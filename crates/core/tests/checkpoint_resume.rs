//! The checkpoint/restore contract, property-tested:
//! `restore(snapshot_at_step_k)` followed by stepping to `m` is
//! **bitwise-identical** to the uninterrupted run — for every engine
//! mode, every parallelism mode within the snapshot's determinism
//! class, every thread count, with and without mid-flight fault
//! schedules (crashes, revivals, extra sources).

use fastflood_core::checkpoint::{self, Snapshot, TAG_FLOD, TAG_MRNG};
use fastflood_core::{
    CheckpointError, EngineMode, FloodingSim, Parallelism, Protocol, SimConfig, SourcePlacement,
};
use fastflood_mobility::{Mixture, Mobility, Mrwp, SnapshotState};
use rand::SnapshotRng;

const SIDE: f64 = 30.0;
const SPEED: f64 = 0.5;
const RADIUS: f64 = 2.5;
const N: usize = 200;

fn model() -> Mrwp {
    Mrwp::new(SIDE, SPEED).expect("valid model")
}

fn config(engine: EngineMode, par: Parallelism, protocol: Protocol, seed: u64) -> SimConfig {
    SimConfig::new(N, RADIUS)
        .seed(seed)
        // fixed source so the fault schedule can avoid it
        .source(SourcePlacement::Agent(0))
        .protocol(protocol)
        .engine(engine)
        .parallelism(par)
}

/// The deterministic fault schedule: applied *before* the step at the
/// named times, exactly like the scenario driver applies events. Agent
/// 0 is the source and is never touched.
fn apply_faults<M, R>(sim: &mut FloodingSim<M, R>)
where
    M: Mobility,
    R: rand::Rng + rand::SeedableRng + Send,
{
    match sim.time() {
        4 => {
            for a in [3usize, 17, 40] {
                sim.crash_agent(a);
            }
        }
        11 => sim.revive_agent(3),
        16 => sim.inform_agent(29),
        _ => {}
    }
}

/// One continuation step under the fault schedule, returning a bitwise
/// fingerprint of the post-step state.
fn step_fingerprint<M, R>(sim: &mut FloodingSim<M, R>, faults: bool) -> (Vec<(u64, u64)>, usize)
where
    M: Mobility,
    R: rand::Rng + rand::SeedableRng + Send,
{
    if faults {
        apply_faults(sim);
    }
    sim.step();
    let bits = sim
        .positions()
        .iter()
        .map(|p| (p.x.to_bits(), p.y.to_bits()))
        .collect();
    (bits, sim.informed_count())
}

/// Runs the contract for one configuration: an uninterrupted reference
/// run vs. a run that snapshots at step `k`, round-trips the snapshot
/// through the binary encoding, restores it into a **fresh** simulator,
/// and continues. Every post-`k` step must match bitwise.
fn assert_resume_identical(cfg: SimConfig, k: u32, m: u32, faults: bool) {
    let label = format!(
        "engine {:?}, par {:?}, proto {:?}, k {k}, faults {faults}",
        cfg.engine, cfg.parallelism, cfg.protocol
    );

    let mut reference = FloodingSim::new(model(), cfg.clone()).expect("valid config");
    let mut interrupted = FloodingSim::new(model(), cfg.clone()).expect("valid config");
    for _ in 0..k {
        step_fingerprint(&mut reference, faults);
        step_fingerprint(&mut interrupted, faults);
    }

    // freeze mid-run, cross the wire, thaw into a fresh simulator
    let snap = interrupted.snapshot();
    let decoded = Snapshot::decode(&snap.encode()).expect("encoding round-trips");
    let mut resumed = FloodingSim::new(model(), cfg).expect("valid config");
    resumed
        .restore(&decoded)
        .unwrap_or_else(|e| panic!("restore failed ({label}): {e}"));
    assert_eq!(resumed.time(), k, "{label}");

    for step in 0..m {
        let want = step_fingerprint(&mut reference, faults);
        let got = step_fingerprint(&mut resumed, faults);
        assert_eq!(
            got.1, want.1,
            "informed count diverged at +{step} ({label})"
        );
        assert_eq!(got.0, want.0, "positions diverged at +{step} ({label})");
    }
    assert_eq!(resumed.report(), reference.report(), "{label}");
}

const ENGINES: [EngineMode; 5] = [
    EngineMode::Adaptive,
    EngineMode::Rebuild,
    EngineMode::Oracle,
    EngineMode::BucketJoin,
    EngineMode::Incremental,
];

const PAR_MODES: [Parallelism; 5] = [
    Parallelism::Sequential,
    Parallelism::Chunked { threads: 1 },
    Parallelism::Chunked { threads: 2 },
    Parallelism::Sharded {
        grid: 2,
        threads: 1,
    },
    Parallelism::Sharded {
        grid: 2,
        threads: 2,
    },
];

const PROTOCOLS: [Protocol; 3] = [
    Protocol::Flooding,
    Protocol::Parsimonious { p: 0.7 },
    Protocol::Gossip { k: 2 },
];

#[test]
fn resume_is_bitwise_identical_across_modes() {
    let mut idx = 0u64;
    for engine in ENGINES {
        for par in PAR_MODES {
            let protocol = PROTOCOLS[idx as usize % PROTOCOLS.len()];
            // snapshot step varies per combination, straddling the
            // fault times (before, between, and after them)
            let k = 3 + (idx * 7 + 3) % 17;
            assert_resume_identical(
                config(engine, par, protocol, 1000 + idx),
                k as u32,
                18,
                true,
            );
            idx += 1;
        }
    }
}

#[test]
fn resume_without_faults_matches_too() {
    assert_resume_identical(
        config(
            EngineMode::Adaptive,
            Parallelism::Chunked { threads: 2 },
            Protocol::Flooding,
            77,
        ),
        9,
        15,
        false,
    );
}

#[test]
fn resume_preserves_turn_recorder() {
    let cfg = config(
        EngineMode::Adaptive,
        Parallelism::Sequential,
        Protocol::Flooding,
        5,
    )
    .record_turns(true);
    let mut reference = FloodingSim::new(model(), cfg.clone()).expect("valid config");
    let mut interrupted = FloodingSim::new(model(), cfg.clone()).expect("valid config");
    for _ in 0..10 {
        reference.step();
        interrupted.step();
    }
    let snap = interrupted.snapshot();
    let mut resumed = FloodingSim::new(model(), cfg).expect("valid config");
    resumed.restore(&snap).expect("restore");
    for _ in 0..10 {
        reference.step();
        resumed.step();
    }
    let want = reference.turn_recorder().expect("recording on");
    let got = resumed.turn_recorder().expect("recording on");
    assert_eq!(
        got.max_in_window_per_agent(5),
        want.max_in_window_per_agent(5)
    );
}

/// Chunked and Sharded share one determinism class: a snapshot taken
/// under Chunked restores into a Sharded simulator (and vice versa) and
/// the continuation still matches the chunked reference bitwise.
#[test]
fn snapshot_moves_within_the_chunked_class() {
    let chunked = config(
        EngineMode::Adaptive,
        Parallelism::Chunked { threads: 2 },
        Protocol::Flooding,
        42,
    );
    let sharded = config(
        EngineMode::Adaptive,
        Parallelism::Sharded {
            grid: 2,
            threads: 2,
        },
        Protocol::Flooding,
        42,
    );

    let mut reference = FloodingSim::new(model(), chunked.clone()).expect("valid config");
    let mut donor = FloodingSim::new(model(), chunked).expect("valid config");
    for _ in 0..8 {
        reference.step();
        donor.step();
    }
    let mut resumed = FloodingSim::new(model(), sharded).expect("valid config");
    resumed.restore(&donor.snapshot()).expect("same class");
    for step in 0..12 {
        reference.step();
        resumed.step();
        let want: Vec<_> = reference
            .positions()
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect();
        let got: Vec<_> = resumed
            .positions()
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect();
        assert_eq!(got, want, "chunked->sharded diverged at +{step}");
    }
    assert_eq!(resumed.report(), reference.report());
}

#[test]
fn resume_spans_multiple_move_chunks() {
    // > MOVE_CHUNK agents so the per-chunk CRNG section holds several
    // independent streams
    let cfg = SimConfig::new(5000, 3.0)
        .seed(9)
        .source(SourcePlacement::Agent(0))
        .parallelism(Parallelism::Chunked { threads: 2 });
    let model = Mrwp::new(70.0, SPEED).expect("valid model");
    let mut reference = FloodingSim::new(model.clone(), cfg.clone()).expect("valid config");
    let mut interrupted = FloodingSim::new(model.clone(), cfg.clone()).expect("valid config");
    for _ in 0..4 {
        reference.step();
        interrupted.step();
    }
    let mut resumed = FloodingSim::new(model, cfg).expect("valid config");
    resumed.restore(&interrupted.snapshot()).expect("restore");
    for _ in 0..4 {
        reference.step();
        resumed.step();
    }
    assert_eq!(
        reference
            .positions()
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect::<Vec<_>>(),
        resumed
            .positions()
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect::<Vec<_>>(),
    );
    assert_eq!(resumed.report(), reference.report());
}

#[test]
fn mixture_snapshots_carry_speed_classes() {
    let mix = Mixture::new(
        vec![
            Mrwp::new(SIDE, 0.2).expect("ok"),
            Mrwp::new(SIDE, 1.2).expect("ok"),
        ],
        vec![0.6, 0.4],
    )
    .expect("valid mixture");
    let cfg = SimConfig::new(120, RADIUS)
        .seed(3)
        .source(SourcePlacement::Agent(0));
    let mut reference = FloodingSim::new(mix.clone(), cfg.clone()).expect("valid config");
    let mut interrupted = FloodingSim::new(mix.clone(), cfg.clone()).expect("valid config");
    for _ in 0..6 {
        reference.step();
        interrupted.step();
    }
    let mut resumed = FloodingSim::new(mix, cfg).expect("valid config");
    resumed.restore(&interrupted.snapshot()).expect("restore");
    for _ in 0..10 {
        reference.step();
        resumed.step();
    }
    assert_eq!(
        reference
            .positions()
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect::<Vec<_>>(),
        resumed
            .positions()
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect::<Vec<_>>(),
    );
}

/// Re-freezing a thawed simulator reproduces the identical byte stream:
/// snapshot → restore → snapshot is the identity on encodings.
#[test]
fn snapshot_restore_snapshot_is_identity() {
    let cfg = config(
        EngineMode::Incremental,
        Parallelism::Chunked { threads: 2 },
        Protocol::Parsimonious { p: 0.5 },
        13,
    );
    let mut sim = FloodingSim::new(model(), cfg.clone()).expect("valid config");
    for _ in 0..12 {
        sim.step();
    }
    let first = sim.snapshot();
    let mut thawed = FloodingSim::new(model(), cfg).expect("valid config");
    thawed.restore(&first).expect("restore");
    assert_eq!(thawed.snapshot().encode(), first.encode());
}

// ---- graceful rejection -------------------------------------------------

fn donor_snapshot(cfg: &SimConfig) -> Snapshot {
    let mut sim = FloodingSim::new(model(), cfg.clone()).expect("valid config");
    for _ in 0..5 {
        sim.step();
    }
    sim.snapshot()
}

#[test]
fn restore_rejects_incompatible_runs() {
    let base = config(
        EngineMode::Adaptive,
        Parallelism::Sequential,
        Protocol::Flooding,
        21,
    );
    let snap = donor_snapshot(&base);

    // a sim that differs in exactly one identity field must refuse
    let mismatches: Vec<(&str, SimConfig)> = vec![
        ("seed", base.clone().seed(22)),
        (
            "radius",
            SimConfig::new(N, RADIUS * 2.0)
                .seed(21)
                .source(SourcePlacement::Agent(0)),
        ),
        ("protocol", base.clone().protocol(Protocol::Gossip { k: 1 })),
        ("turns", base.clone().record_turns(true)),
        (
            "class",
            base.clone()
                .parallelism(Parallelism::Chunked { threads: 1 }),
        ),
    ];
    for (what, cfg) in mismatches {
        let mut sim = FloodingSim::new(model(), cfg).expect("valid config");
        match sim.restore(&snap) {
            Err(CheckpointError::Incompatible { .. }) => {}
            other => panic!("{what}: expected Incompatible, got {other:?}"),
        }
        assert_eq!(sim.time(), 0, "{what}: sim must be untouched on error");
    }

    // population size mismatch
    let mut small =
        FloodingSim::new(model(), SimConfig::new(50, RADIUS).seed(21)).expect("valid config");
    assert!(matches!(
        small.restore(&snap),
        Err(CheckpointError::Incompatible { .. })
    ));

    // different mobility model (fingerprint): same n/seed/radius, other speed
    let other = Mrwp::new(SIDE, SPEED * 2.0).expect("valid model");
    let mut sim = FloodingSim::new(other, base.clone()).expect("valid config");
    assert!(matches!(
        sim.restore(&snap),
        Err(CheckpointError::Incompatible { .. })
    ));

    // engine mode is NOT identity: restoring into another engine works
    let mut sim = FloodingSim::new(model(), base.engine(EngineMode::Oracle)).expect("valid");
    sim.restore(&snap).expect("engines are interchangeable");
}

/// Rebuilds a snapshot with one section's payload swapped.
fn with_section(snap: &Snapshot, tag: [u8; 4], payload: Vec<u8>) -> Snapshot {
    let mut out = Snapshot::new();
    for t in snap.tags() {
        if t == tag {
            out.push(t, payload.clone());
        } else {
            out.push(t, snap.section(t).expect("listed").to_vec());
        }
    }
    out
}

#[test]
fn restore_rejects_corrupt_sections() {
    let base = config(
        EngineMode::Adaptive,
        Parallelism::Sequential,
        Protocol::Flooding,
        33,
    );
    let snap = donor_snapshot(&base);
    let mut sim = FloodingSim::new(model(), base).expect("valid config");

    // an all-zero xoshiro state is the generator's fixed point and is
    // rejected as an invalid stream
    let mrng = snap.section(TAG_MRNG).expect("present").to_vec();
    let mut zeroed = mrng.clone();
    for b in &mut zeroed[8..] {
        *b = 0;
    }
    let bad = with_section(&snap, TAG_MRNG, zeroed);
    assert!(matches!(
        sim.restore(&bad),
        Err(CheckpointError::Corrupt { section, .. }) if section == TAG_MRNG
    ));

    // a roster that disagrees with the informed flags
    let flod = snap.section(TAG_FLOD).expect("present").to_vec();
    let mut swapped = flod.clone();
    // first worklist entry lives right after the u64 length prefix
    swapped[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    let bad = with_section(&snap, TAG_FLOD, swapped);
    assert!(matches!(
        sim.restore(&bad),
        Err(CheckpointError::Corrupt { section, .. }) if section == TAG_FLOD
    ));

    // a missing required section
    let mut partial = Snapshot::new();
    for t in snap.tags().filter(|&t| t != TAG_MRNG) {
        partial.push(t, snap.section(t).expect("listed").to_vec());
    }
    assert!(matches!(
        sim.restore(&partial),
        Err(CheckpointError::MissingSection { section }) if section == TAG_MRNG
    ));

    // the sim is pristine after all those rejections: it still resumes
    sim.restore(&snap).expect("clean snapshot restores");
    assert_eq!(sim.time(), 5);
}

/// The per-agent state tags keep models apart even through the mixture
/// wrapper, and the snapshot exposes them for tooling.
#[test]
fn fingerprint_tags_are_model_specific() {
    use fastflood_mobility::{MixtureState, MrwpState};
    assert_ne!(
        <MrwpState as SnapshotState>::STATE_TAG,
        <MixtureState<MrwpState> as SnapshotState>::STATE_TAG
    );
}

/// End-to-end durability: atomic write, directory fallback ladder.
#[test]
fn checkpoint_directory_ladder_survives_corruption() {
    let dir = std::env::temp_dir().join(format!("ffcp-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let cfg = config(
        EngineMode::Adaptive,
        Parallelism::Sequential,
        Protocol::Flooding,
        55,
    );
    let mut reference = FloodingSim::new(model(), cfg.clone()).expect("valid config");
    let mut sim = FloodingSim::new(model(), cfg.clone()).expect("valid config");
    for step in 1..=9u32 {
        reference.step();
        sim.step();
        if step % 3 == 0 {
            sim.snapshot()
                .write_atomic(&dir.join(format!("run-step{step:08}.ckpt")))
                .expect("write");
        }
    }
    // truncate the newest checkpoint: the ladder must fall back to step 6
    let newest = dir.join("run-step00000009.ckpt");
    let bytes = std::fs::read(&newest).expect("read");
    std::fs::write(&newest, &bytes[..bytes.len() - 7]).expect("truncate");

    let scan = checkpoint::latest_valid(&dir).expect("scan");
    let (path, snap) = scan.snapshot.expect("step 6 survives");
    assert!(path.ends_with("run-step00000006.ckpt"));
    assert_eq!(scan.rejected.len(), 1);

    let mut resumed = FloodingSim::new(model(), cfg).expect("valid config");
    resumed.restore(&snap).expect("restore from disk");
    assert_eq!(resumed.time(), 6);
    // replay past the crash point and on: must track the reference
    for _ in 6..9 {
        resumed.step();
    }
    for _ in 0..5 {
        reference.step();
        resumed.step();
    }
    assert_eq!(
        reference
            .positions()
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect::<Vec<_>>(),
        resumed
            .positions()
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect::<Vec<_>>(),
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The vendored generators expose exact-state serialization; sanity-check
/// the trait surface the checkpoint layer builds on.
#[test]
fn snapshot_rng_roundtrip_surface() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(7);
    let _: u64 = rng.gen();
    let bytes = rng.state_bytes();
    let mut back = SmallRng::from_state_bytes(&bytes).expect("valid state");
    assert_eq!(rng.gen::<u64>(), back.gen::<u64>());
    assert!(SmallRng::from_state_bytes(&[0u8; 32]).is_none());
}
