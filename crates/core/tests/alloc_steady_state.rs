//! Zero-allocation steady state: once the engine's scratch is warm, a
//! full-flooding step must not touch the heap.
//!
//! A counting global allocator wraps the system allocator; the test runs
//! a sim mid-flood (worklist non-empty), warms the engine, then asserts
//! that further steps allocate nothing. The lib crate forbids unsafe
//! code; the `GlobalAlloc` shim lives here in the test crate.
//!
//! Every test below also covers the batched SoA move pass implicitly —
//! `FloodingSim::step` moves all agents through `Mobility::step_batch`
//! over the hot/cold `MrwpBatch` arrays, which are sized once at
//! construction and must never grow (way-point rollovers replace cold
//! entries in place; the drift measurement is pure arithmetic). The
//! pause-model test exercises the batch's slow path (pauses, rollovers,
//! leg-cache refills) explicitly.

use fastflood_core::{EngineMode, FloodingSim, Parallelism, Protocol, SimConfig, SourcePlacement};
use fastflood_mobility::Mrwp;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The allocation counter is process-global; the harness runs tests on
/// parallel threads, so every measured window must hold this lock or a
/// co-scheduled allocating test fails the zero assertions spuriously.
static MEASURE: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

fn warm_sparse_sim(protocol: Protocol) -> FloodingSim<Mrwp> {
    warm_sparse_sim_with_engine(protocol, EngineMode::Adaptive)
}

fn warm_sparse_sim_with_engine(protocol: Protocol, engine: EngineMode) -> FloodingSim<Mrwp> {
    // sparse regime: radius far below connectivity, slow agents, so the
    // flood stays incomplete for thousands of steps
    let model = Mrwp::new(100.0, 0.2).unwrap();
    let mut sim = FloodingSim::new(
        model,
        SimConfig::new(800, 1.5)
            .seed(7)
            .source(SourcePlacement::Center)
            .protocol(protocol)
            .engine(engine),
    )
    .unwrap();
    // warm up every scratch buffer (both index sides get exercised as
    // the informed set grows) and pre-reserve the spread curve
    sim.reserve_steps(4_096);
    for _ in 0..300 {
        sim.step();
    }
    assert!(
        !sim.all_informed() && sim.informed_count() > 1,
        "test needs a mid-flood state: {} informed",
        sim.informed_count()
    );
    sim
}

#[test]
fn full_flooding_steps_do_not_allocate() {
    let _window = MEASURE.lock().unwrap();
    let mut sim = warm_sparse_sim(Protocol::Flooding);
    let before = allocations();
    for _ in 0..200 {
        sim.step();
    }
    let after = allocations();
    assert!(
        !sim.all_informed(),
        "flood completed mid-measurement; slow the parameters down"
    );
    assert_eq!(
        after - before,
        0,
        "full-flooding steady state must not allocate"
    );
}

#[test]
fn bucket_join_steps_do_not_allocate() {
    let _window = MEASURE.lock().unwrap();
    // the join rebuilds two shared-geometry grids per step; both must
    // run entirely out of retained storage once warm
    for protocol in [Protocol::Flooding, Protocol::Parsimonious { p: 0.5 }] {
        let mut sim = warm_sparse_sim_with_engine(protocol, EngineMode::BucketJoin);
        let before = allocations();
        for _ in 0..200 {
            sim.step();
        }
        let after = allocations();
        assert!(
            sim.bucket_join_steps() > 0,
            "BucketJoin mode must run the join path"
        );
        assert_eq!(
            after - before,
            0,
            "{protocol:?} bucket-join steady state must not allocate"
        );
    }
}

#[test]
fn incremental_steps_do_not_allocate_even_through_relayouts() {
    let _window = MEASURE.lock().unwrap();
    // the incremental engine maintains two slack-layout grids by diff;
    // the measured window must cover diff steps AND the slack-overflow
    // re-layout fallback (drifting agents overflow rows eventually), all
    // out of retained storage
    for protocol in [Protocol::Flooding, Protocol::Parsimonious { p: 0.5 }] {
        let mut sim = warm_sparse_sim_with_engine(protocol, EngineMode::Incremental);
        let diff_before = sim.incremental_diff_steps();
        let before = allocations();
        for _ in 0..200 {
            sim.step();
        }
        let after = allocations();
        assert!(
            !sim.all_informed(),
            "flood completed mid-measurement; slow the parameters down"
        );
        assert!(
            sim.incremental_diff_steps() > diff_before,
            "the measured window must contain incremental diff re-bins"
        );
        assert_eq!(
            after - before,
            0,
            "{protocol:?} incremental steady state must not allocate"
        );
    }
}

#[test]
fn adaptive_incremental_join_does_not_allocate_in_dense_regime() {
    let _window = MEASURE.lock().unwrap();
    // the production path: a mid-flood state where Adaptive has
    // auto-engaged the incrementally maintained join (transmitters no
    // longer scarce), sparse enough that the flood outlasts the window
    let model = Mrwp::new(100.0, 0.2).unwrap();
    let mut sim = FloodingSim::new(
        model,
        SimConfig::new(2_000, 1.2)
            .seed(11)
            .source(SourcePlacement::Center)
            .engine(EngineMode::Adaptive),
    )
    .unwrap();
    sim.reserve_steps(1 << 15);
    let mut guard = 0u32;
    while 2 * sim.informed_count() < sim.n() && guard < 20_000 {
        sim.step();
        guard += 1;
    }
    assert!(
        !sim.all_informed() && sim.bucket_join_steps() > 0,
        "warm state must be mid-flood with the join engaged ({} informed)",
        sim.informed_count()
    );
    let diff_before = sim.incremental_diff_steps();
    let before = allocations();
    for _ in 0..200 {
        sim.step();
    }
    let after = allocations();
    assert!(!sim.all_informed(), "flood completed mid-measurement");
    assert!(
        sim.incremental_diff_steps() > diff_before,
        "the auto-engaged join must re-bin by diff in the window"
    );
    assert_eq!(
        after - before,
        0,
        "adaptive incremental join steady state must not allocate"
    );
}

#[test]
fn parsimonious_and_gossip_steps_do_not_allocate() {
    let _window = MEASURE.lock().unwrap();
    for protocol in [Protocol::Parsimonious { p: 0.5 }, Protocol::Gossip { k: 2 }] {
        let mut sim = warm_sparse_sim(protocol);
        let before = allocations();
        for _ in 0..200 {
            sim.step();
        }
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "{protocol:?} steady state must not allocate"
        );
    }
}

#[test]
fn batched_move_pass_with_pauses_does_not_allocate() {
    let _window = MEASURE.lock().unwrap();
    // pause-heavy population: the batch's slow path (pause countdowns,
    // way-point rollovers into fresh trips, leg-cache refills) and the
    // measured-drift staleness accrual must run without heap traffic,
    // on both the forced incremental engine and the adaptive policy
    for engine in [EngineMode::Incremental, EngineMode::Adaptive] {
        let model = Mrwp::new(100.0, 0.2).unwrap().with_pause(3);
        let mut sim = FloodingSim::new(
            model,
            SimConfig::new(800, 1.5)
                .seed(7)
                .source(SourcePlacement::Center)
                .engine(engine),
        )
        .unwrap();
        sim.reserve_steps(4_096);
        for _ in 0..300 {
            sim.step();
        }
        assert!(
            !sim.all_informed() && sim.informed_count() > 1,
            "test needs a mid-flood state: {} informed",
            sim.informed_count()
        );
        let before = allocations();
        for _ in 0..200 {
            sim.step();
        }
        let after = allocations();
        assert!(!sim.all_informed(), "flood completed mid-measurement");
        assert_eq!(
            after - before,
            0,
            "{engine:?} batched move pass with pauses must not allocate"
        );
    }
}

#[test]
fn parallel_chunked_steps_do_not_allocate() {
    let _window = MEASURE.lock().unwrap();
    // the chunked-parallel engine: pool dispatches, per-chunk event
    // scratch, block-RNG refill buffers (fixed inline arrays inside
    // each chunk context — refills must never touch the heap), sharded
    // stale joins (per-shard output regions), and sharded refresh
    // passes (relocation/fixup regions) must all run out of retained
    // storage once the pool and scratch are warm — on the forced
    // incremental engine and the adaptive policy alike, with phase
    // timing (and thus the kernel/boundary split counters) live
    for engine in [EngineMode::Incremental, EngineMode::Adaptive] {
        let model = Mrwp::new(100.0, 0.2).unwrap();
        let mut sim = FloodingSim::new(
            model,
            SimConfig::new(800, 1.5)
                .seed(7)
                .source(SourcePlacement::Center)
                .engine(engine)
                .parallelism(Parallelism::Chunked { threads: 2 }),
        )
        .unwrap();
        sim.enable_phase_timing(true);
        sim.reserve_steps(4_096);
        for _ in 0..300 {
            sim.step();
        }
        assert!(
            !sim.all_informed() && sim.informed_count() > 1,
            "test needs a mid-flood state: {} informed",
            sim.informed_count()
        );
        let diff_before = sim.incremental_diff_steps();
        let before = allocations();
        for _ in 0..200 {
            sim.step();
        }
        let after = allocations();
        assert!(!sim.all_informed(), "flood completed mid-measurement");
        assert!(
            sim.incremental_diff_steps() > diff_before,
            "the measured window must contain parallel diff re-bins"
        );
        assert_eq!(
            after - before,
            0,
            "{engine:?} chunked-parallel steady state must not allocate"
        );
        // single chunk at n = 800, so summed chunk CPU time is
        // comparable against the wall-clock move phase
        let phases = sim.phase_times();
        assert!(
            phases.boundary_ns <= phases.move_ns,
            "boundary pass is a subset of the move pass"
        );
    }
}

#[test]
fn sharded_steps_do_not_allocate_even_across_a_churn_rebuild() {
    let _window = MEASURE.lock().unwrap();
    // the sharded world: roster surgery write-index compaction,
    // migration outboxes (grow-and-retain), per-shard grid rebuilds,
    // halo band reads, and per-shard newly lists must all run out of
    // retained storage once warm — for both protocols, and across a
    // churn-spike full roster re-file (a mid-window crash/revive burst
    // marks the world dirty, forcing the sequential O(n) re-file path
    // through the same retained vectors)
    for protocol in [Protocol::Flooding, Protocol::Parsimonious { p: 0.5 }] {
        let model = Mrwp::new(100.0, 0.2).unwrap();
        let mut sim = FloodingSim::new(
            model,
            SimConfig::new(800, 1.5)
                .seed(7)
                .source(SourcePlacement::Center)
                .protocol(protocol)
                .parallelism(Parallelism::Sharded {
                    grid: 2,
                    threads: 2,
                }),
        )
        .unwrap();
        sim.reserve_steps(4_096);
        // warm with one fault burst so the revive path's roster pushes
        // have seen their high-water mark before the window
        for t in 0..300 {
            if t == 150 {
                for a in (1..800).step_by(31) {
                    sim.crash_agent(a);
                }
            }
            if t == 200 {
                for a in (1..800).step_by(31) {
                    if sim.is_crashed(a) {
                        sim.revive_agent(a);
                    }
                }
            }
            sim.step();
        }
        assert!(
            !sim.all_informed() && sim.informed_count() > 1,
            "test needs a mid-flood state: {} informed",
            sim.informed_count()
        );
        let rebuilds_before = sim.sharded_world().unwrap().full_rebuilds();
        let before = allocations();
        for t in 0..200 {
            if t == 100 {
                // churn spike inside the measured window: crash a band
                // and revive it, forcing a full roster re-file
                for a in (1..800).step_by(31) {
                    sim.crash_agent(a);
                }
                for a in (1..800).step_by(62) {
                    sim.revive_agent(a);
                }
            }
            sim.step();
        }
        let after = allocations();
        assert!(!sim.all_informed(), "flood completed mid-measurement");
        let world = sim.sharded_world().unwrap();
        assert!(
            world.full_rebuilds() > rebuilds_before,
            "the measured window must contain a churn-spike re-file"
        );
        assert!(
            world.migrations() > 0,
            "the window's steps must migrate agents across shards"
        );
        assert_eq!(
            after - before,
            0,
            "{protocol:?} sharded steady state must not allocate"
        );
    }
}

#[test]
fn seed_rebuild_engine_allocates_every_step() {
    let _window = MEASURE.lock().unwrap();
    // sanity check that the counter actually measures the engine: the
    // baseline rebuild engine allocates its index every step
    let model = Mrwp::new(100.0, 0.2).unwrap();
    let mut sim = FloodingSim::new(
        model,
        SimConfig::new(800, 1.5)
            .seed(7)
            .source(SourcePlacement::Center)
            .engine(EngineMode::Rebuild),
    )
    .unwrap();
    sim.reserve_steps(256);
    for _ in 0..50 {
        sim.step();
    }
    let before = allocations();
    for _ in 0..50 {
        sim.step();
    }
    assert!(
        allocations() - before >= 50,
        "rebuild baseline should allocate at least once per step"
    );
}
