//! The sharded-world contract (`Parallelism::Sharded`), end to end:
//!
//! * **shard-grid & thread-count invariance** — for a fixed
//!   `(seed, n)` the whole trajectory (position bits, inform times,
//!   spread curve) is bitwise identical across K ∈ {1, 2, 4} shard
//!   grids × {1, 2, 8} worker threads, *and* identical to
//!   `Parallelism::Chunked` — the acceptance invariant of the sharded
//!   engine (the decomposition is RNG-free; the move pass is the same
//!   chunked kernel);
//! * **halo correctness** — the sharded join (own snapshot + ≤ 8
//!   neighboring halo bands) informs exactly the brute-force oracle's
//!   sets every step, including runs seeded with agents straddling
//!   shard boundaries;
//! * **migration correctness** — agent state survives shard crossings
//!   bitwise (mid-leg MRWP agents included), ownership always matches
//!   the router after every step, and crash/revive faults landing
//!   between steps force clean full re-files instead of divergence;
//! * **boundary edge cases** — agents exactly on a shard boundary
//!   belong to the higher-index shard, a radius larger than a shard
//!   cell's side is **rejected** at construction (the documented
//!   choice), and populations smaller than the shard count run fine.
//!
//! `scripts/tier1.sh` re-runs this suite with `FASTFLOOD_THREADS=2`.

use fastflood_core::{EngineMode, FloodingSim, Parallelism, Protocol, SimConfig, SourcePlacement};
use fastflood_geom::Point;
use fastflood_mobility::Mrwp;
use proptest::prelude::*;

fn sim(
    n: usize,
    side: f64,
    radius: f64,
    speed: f64,
    seed: u64,
    protocol: Protocol,
    parallelism: Parallelism,
) -> FloodingSim<Mrwp> {
    let model = Mrwp::new(side, speed).unwrap();
    FloodingSim::new(
        model,
        SimConfig::new(n, radius)
            .seed(seed)
            .source(SourcePlacement::Agent(0))
            .protocol(protocol)
            .parallelism(parallelism),
    )
    .unwrap()
}

/// Bitwise trajectory fingerprint: position bits, inform times, spread.
#[allow(clippy::type_complexity)]
fn fingerprint(sim: &FloodingSim<Mrwp>) -> (Vec<(u64, u64)>, Vec<Option<u32>>, Vec<u32>) {
    (
        sim.positions()
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect(),
        (0..sim.n()).map(|a| sim.inform_time(a)).collect(),
        sim.report().spread,
    )
}

/// The headline acceptance invariant: `Sharded { grid: K }` is bitwise
/// identical to `Chunked` for every K ∈ {1, 2, 4} and every thread
/// count in {1, 2, 8}, for both flooding and parsimonious flooding.
#[test]
fn sharded_trajectories_bitwise_match_chunked_across_grids_and_threads() {
    for protocol in [Protocol::Flooding, Protocol::Parsimonious { p: 0.55 }] {
        let reference = {
            let mut s = sim(
                900,
                30.0,
                2.0,
                0.5,
                2010,
                protocol,
                Parallelism::Chunked { threads: 1 },
            );
            let report = s.run(5_000);
            assert!(report.completed, "{protocol:?}: flood must complete");
            fingerprint(&s)
        };
        for grid in [1usize, 2, 4] {
            for threads in [1usize, 2, 8] {
                let mut s = sim(
                    900,
                    30.0,
                    2.0,
                    0.5,
                    2010,
                    protocol,
                    Parallelism::Sharded { grid, threads },
                );
                s.run(5_000);
                assert_eq!(
                    fingerprint(&s),
                    reference,
                    "{protocol:?}: Sharded {{ grid: {grid}, threads: {threads} }} \
                     diverged from Chunked"
                );
                let world = s.sharded_world().expect("sharded world active");
                assert_eq!(world.grid(), grid);
                if grid > 1 {
                    assert!(
                        world.migrations() > 0,
                        "K = {grid}: a mobile flood must cross shard boundaries"
                    );
                    assert!(
                        world.halo_candidates() > 0,
                        "K = {grid}: informs must flow through halo bands"
                    );
                }
            }
        }
    }
}

/// Agents placed *exactly* on shard boundary lines (the K = 2 midlines,
/// including the center point on both): the router files them into the
/// higher-index shard, and the trajectory still matches the chunked
/// twin bitwise.
#[test]
fn agents_exactly_on_shard_boundaries_match_chunked() {
    let side = 16.0;
    let build = |par: Parallelism| {
        let mut s = sim(120, side, 2.0, 0.4, 7, Protocol::Flooding, par);
        // a column and a row of agents pinned to the K = 2 boundary
        // lines; applied identically to both twins (placement re-inits
        // draw from the main stream, which both twins share)
        for (i, a) in (1..=10usize).enumerate() {
            s.place_agent_at(a, Point::new(side / 2.0, 1.0 + i as f64))
                .unwrap();
        }
        for (i, a) in (11..=20usize).enumerate() {
            s.place_agent_at(a, Point::new(1.0 + i as f64, side / 2.0))
                .unwrap();
        }
        s.place_agent_at(21, Point::new(side / 2.0, side / 2.0))
            .unwrap();
        s
    };
    let mut sharded = build(Parallelism::Sharded {
        grid: 2,
        threads: 2,
    });
    {
        let world = sharded.sharded_world().unwrap();
        // exact-boundary positions belong to the higher-index shard
        assert_eq!(world.shard_of(Point::new(side / 2.0, 1.0)), 1);
        assert_eq!(world.shard_of(Point::new(1.0, side / 2.0)), 2);
        assert_eq!(world.shard_of(Point::new(side / 2.0, side / 2.0)), 3);
    }
    let mut chunked = build(Parallelism::Chunked { threads: 2 });
    let a = sharded.run(5_000);
    let b = chunked.run(5_000);
    assert_eq!(a, b, "boundary-pinned layout diverged");
    assert_eq!(fingerprint(&sharded), fingerprint(&chunked));
}

/// Construction rejects a shard grid whose cells could not contain
/// their own halo band: the transmit radius must fit inside one
/// neighboring cell (reject, not widen — the documented choice).
#[test]
fn oversized_radius_and_zero_grid_are_rejected() {
    let build = |radius: f64, grid: usize| {
        FloodingSim::new(
            Mrwp::new(8.0, 0.3).unwrap(),
            SimConfig::new(16, radius).parallelism(Parallelism::Sharded { grid, threads: 1 }),
        )
    };
    // 8 / 4 = 2 < 2.5: the halo band outgrows a cell
    let err = build(2.5, 4).expect_err("must reject");
    assert!(
        err.to_string().contains("shard cell side"),
        "rejection must name the cell-side constraint, got: {err}"
    );
    assert!(build(0.5, 0).is_err(), "grid 0 must be rejected");
    // equality is the documented edge: cell side == radius is allowed
    assert!(build(2.0, 4).is_ok());
    // K = 1 has no halo, so any radius the sim accepts is fine
    assert!(build(100.0, 1).is_ok());
}

/// Fewer agents than shards: most shards stay empty, and the
/// trajectory still matches the chunked twin.
#[test]
fn population_smaller_than_shard_count_matches_chunked() {
    // n = 5 over a 4×4 = 16-shard world
    let mut sharded = sim(
        5,
        12.0,
        3.0,
        0.5,
        3,
        Protocol::Flooding,
        Parallelism::Sharded {
            grid: 4,
            threads: 2,
        },
    );
    let mut chunked = sim(
        5,
        12.0,
        3.0,
        0.5,
        3,
        Protocol::Flooding,
        Parallelism::Chunked { threads: 2 },
    );
    let a = sharded.run(10_000);
    let b = chunked.run(10_000);
    assert!(a.completed, "tiny flood must complete");
    assert_eq!(a, b);
    assert_eq!(fingerprint(&sharded), fingerprint(&chunked));
}

/// Ownership audit after every step of a crossing-heavy run: every
/// live agent is owned by the shard its (post-move) position bins to,
/// crashed agents are owned by nobody, and migrations accumulate.
/// Fast mid-leg MRWP agents make boundary crossings the common case.
#[test]
fn ownership_matches_router_after_every_step() {
    let mut s = sim(
        400,
        10.0,
        1.2,
        0.9, // fast: most agents are mid-leg while crossing cells
        13,
        Protocol::Flooding,
        Parallelism::Sharded {
            grid: 4,
            threads: 2,
        },
    );
    for step in 1..=60u32 {
        s.step();
        if s.all_informed() {
            break;
        }
        let world = s.sharded_world().unwrap();
        for (a, &p) in s.positions().iter().enumerate() {
            if s.is_crashed(a) {
                assert_eq!(world.owner_of(a), None, "step {step}: crashed agent owned");
            } else {
                assert_eq!(
                    world.owner_of(a),
                    Some(world.shard_of(p)),
                    "step {step}: agent {a} owned by the wrong shard"
                );
            }
        }
    }
    let world = s.sharded_world().unwrap();
    assert!(world.migrations() > 0, "fast agents must have migrated");
}

/// Crash/revive fault bursts landing between steps (the exchange
/// window of the next transmit): the world re-files from the global
/// state — visible as full-rebuild counts — and the trajectory stays
/// bitwise identical to a chunked twin given the same fault schedule.
#[test]
fn crash_revive_faults_force_refiles_and_match_chunked() {
    let n = 500;
    let run = |par: Parallelism| {
        let mut s = sim(n, 25.0, 1.6, 0.4, 99, Protocol::Flooding, par);
        for t in 1..=400u32 {
            if t % 15 == 0 {
                for a in (t as usize % 4 + 1..n).step_by(53) {
                    s.crash_agent(a);
                }
            }
            if t % 45 == 0 {
                for a in (1..n).step_by(53) {
                    if s.is_crashed(a) {
                        s.revive_agent(a);
                    }
                }
            }
            s.step();
            if s.all_informed() {
                break;
            }
        }
        s
    };
    let sharded = run(Parallelism::Sharded {
        grid: 2,
        threads: 2,
    });
    let chunked = run(Parallelism::Chunked { threads: 2 });
    assert_eq!(
        fingerprint(&sharded),
        fingerprint(&chunked),
        "fault schedule diverged the sharded world from chunked"
    );
    let world = sharded.sharded_world().unwrap();
    assert!(
        world.full_rebuilds() >= 2,
        "each fault burst must force a roster re-file (got {})",
        world.full_rebuilds()
    );
}

/// Lockstep halo-correctness driver: a sharded run against the
/// brute-force oracle on the same chunk streams, informed sets
/// compared after every step.
#[allow(clippy::too_many_arguments)]
fn lockstep_vs_oracle(
    n: usize,
    side: f64,
    radius: f64,
    seed: u64,
    grid: usize,
    protocol: Protocol,
    boundary_pins: usize,
    steps: u32,
) {
    let model = Mrwp::new(side, radius.min(0.8)).unwrap();
    let build = |parallelism: Parallelism, engine: EngineMode| {
        let mut s = FloodingSim::new(
            model.clone(),
            SimConfig::new(n, radius)
                .seed(seed)
                .source(SourcePlacement::Agent(0))
                .protocol(protocol)
                .engine(engine)
                .parallelism(parallelism),
        )
        .unwrap();
        // pin some agents exactly onto the shard boundary lines so the
        // halo join's edge cases are exercised every case
        let cell = side / grid as f64;
        for i in 0..boundary_pins.min(n - 1) {
            let a = 1 + i;
            let line = cell * (1 + i % (grid - 1).max(1)) as f64;
            let along = side * (i as f64 + 0.5) / boundary_pins as f64;
            let pos = if i % 2 == 0 {
                Point::new(line, along)
            } else {
                Point::new(along, line)
            };
            s.place_agent_at(a, pos).unwrap();
        }
        s
    };
    let mut sharded = build(
        Parallelism::Sharded { grid, threads: 2 },
        EngineMode::Adaptive,
    );
    let mut oracle = build(Parallelism::Chunked { threads: 1 }, EngineMode::Oracle);
    for t in 1..=steps {
        sharded.step();
        oracle.step();
        prop_assert_eq!(
            sharded.informed(),
            oracle.informed(),
            "step {}: sharded join diverged from the oracle (n={}, seed={}, K={}, {:?})",
            t,
            n,
            seed,
            grid,
            protocol
        );
        if sharded.all_informed() {
            break;
        }
    }
    prop_assert_eq!(sharded.report(), oracle.report());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sharded join == brute-force transmit set, with agents straddling
    /// shard boundaries: the halo band must surface every cross-shard
    /// transmitter, never a spurious one.
    #[test]
    fn halo_join_matches_oracle_with_boundary_straddlers(
        seed in 0u64..1000,
        n in 60usize..180,
        grid in 2usize..5,
        pins in 4usize..20,
    ) {
        lockstep_vs_oracle(n, 12.0, 2.5, seed, grid, Protocol::Flooding, pins, 300);
    }

    /// Same through the parsimonious coin filter: the effective roster
    /// each shard publishes is exactly the globally drawn coin subset.
    #[test]
    fn halo_join_matches_oracle_parsimonious(
        seed in 0u64..1000,
        n in 60usize..160,
        p in 0.1f64..0.9,
    ) {
        lockstep_vs_oracle(n, 12.0, 2.5, seed, 2, Protocol::Parsimonious { p }, 8, 300);
    }

    /// Migration property: under random crash faults, state survives
    /// crossings bitwise (the full trajectory equals the chunked
    /// twin's) and ownership matches the router at the end.
    #[test]
    fn migrations_preserve_state_bitwise_under_faults(
        seed in 0u64..1000,
        n in 60usize..160,
        grid in 2usize..5,
        crash_stride in 5usize..40,
    ) {
        let run = |par: Parallelism| {
            let mut s = sim(n, 10.0, 1.5, 0.8, seed, Protocol::Flooding, par);
            for t in 1..=120u32 {
                if t == 20 {
                    for a in (1..n).step_by(crash_stride) {
                        s.crash_agent(a);
                    }
                }
                if t == 60 {
                    for a in (1..n).step_by(crash_stride * 2) {
                        if s.is_crashed(a) {
                            s.revive_agent(a);
                        }
                    }
                }
                s.step();
            }
            s
        };
        let sharded = run(Parallelism::Sharded { grid, threads: 2 });
        let chunked = run(Parallelism::Chunked { threads: 2 });
        prop_assert_eq!(fingerprint(&sharded), fingerprint(&chunked));
        let world = sharded.sharded_world().unwrap();
        if !sharded.all_informed() {
            for (a, &p) in sharded.positions().iter().enumerate() {
                if sharded.is_crashed(a) {
                    prop_assert_eq!(world.owner_of(a), None);
                } else {
                    prop_assert_eq!(world.owner_of(a), Some(world.shard_of(p)));
                }
            }
        }
    }
}
