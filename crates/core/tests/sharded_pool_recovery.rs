//! Panic-recovery coverage for the shared `WorkerPool` under
//! `Parallelism::Sharded` — the supervisor's survival story at the
//! engine layer:
//!
//! * a task panic on the pool a sharded sim is about to use (or is in
//!   the middle of using) leaves the pool fully reusable, and
//! * the sim's trajectory stays **bitwise identical** to the
//!   `Chunked` reference — `Sharded { grid: K }` ≡ `Chunked` is the
//!   sharded engine's acceptance invariant, so any scheduling fallout
//!   from the panic (dead workers, inline fallbacks at the wrong
//!   moment) would show up as a fingerprint mismatch here.
//!
//! The pool under test is obtained through `shared_pool(threads)` —
//! the same registry `FloodingSim` construction resolves through — so
//! these tests exercise the actual sharing seam the job runtime in
//! `crates/service` rides, not a private look-alike pool.

use fastflood_core::{EngineMode, FloodingSim, Parallelism, SimConfig, SourcePlacement};
use fastflood_mobility::Mrwp;
use fastflood_parallel::shared_pool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn sim(n: usize, seed: u64, parallelism: Parallelism) -> FloodingSim<Mrwp> {
    let model = Mrwp::new(30.0, 0.5).unwrap();
    FloodingSim::new(
        model,
        SimConfig::new(n, 2.0)
            .seed(seed)
            .source(SourcePlacement::Agent(0))
            .engine(EngineMode::Adaptive)
            .parallelism(parallelism),
    )
    .unwrap()
}

/// Bitwise trajectory fingerprint: position bits, inform times, spread.
#[allow(clippy::type_complexity)]
fn fingerprint(sim: &FloodingSim<Mrwp>) -> (Vec<(u64, u64)>, Vec<Option<u32>>, Vec<u32>) {
    (
        sim.positions()
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect(),
        (0..sim.n()).map(|a| sim.inform_time(a)).collect(),
        sim.report().spread,
    )
}

/// A panicking dispatch before and another mid-run must leave the
/// shared pool serving the sharded sim with unchanged results.
#[test]
fn sharded_run_is_bitwise_correct_after_pool_task_panics() {
    // the reference runs on its own (sequentially-chunked) universe
    let reference = {
        let mut s = sim(700, 77, Parallelism::Chunked { threads: 1 });
        let report = s.run(5_000);
        assert!(report.completed, "reference flood must complete");
        fingerprint(&s)
    };

    // hold the shared pool the sharded sim will resolve to, and prove
    // the sim actually shares it (construction bumps the Arc count)
    let pool = shared_pool(2);
    let before = Arc::strong_count(&pool);

    // wound the pool before the sim exists: a task panic mid-dispatch
    let hurt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.run(64, &|i| {
            if i == 13 {
                panic!("pre-run task panic");
            }
        });
    }));
    assert!(hurt.is_err(), "the panic must reach the dispatcher");

    let mut s = sim(
        700,
        77,
        Parallelism::Sharded {
            grid: 2,
            threads: 2,
        },
    );
    assert!(
        Arc::strong_count(&pool) > before,
        "the sharded sim must share the registry pool, not build its own"
    );

    // run half the flood, panic another dispatch on the *same* pool
    // (mid-sharded-transmit from the sim's point of view: its next
    // step dispatches on a pool that just unwound), then finish
    for _ in 0..40 {
        if s.all_informed() {
            break;
        }
        s.step();
    }
    let hurt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.run(32, &|i| {
            if i == 7 {
                panic!("mid-run task panic");
            }
        });
    }));
    assert!(hurt.is_err(), "the mid-run panic must reach the dispatcher");

    let report = s.run(5_000);
    assert!(report.completed, "sharded flood must complete");
    assert_eq!(
        fingerprint(&s),
        reference,
        "panics on the shared pool must not change the trajectory"
    );
}

/// Panicking dispatches hammering the shared pool *concurrently* from
/// another thread (the sim's dispatches fall back to inline execution
/// whenever the pool is busy) must not perturb the trajectory either.
#[test]
fn sharded_run_survives_concurrent_panicking_dispatches() {
    let reference = {
        let mut s = sim(500, 910, Parallelism::Chunked { threads: 1 });
        let report = s.run(5_000);
        assert!(report.completed, "reference flood must complete");
        fingerprint(&s)
    };

    // a distinct thread count from the other test so the two tests
    // never contend for one registry entry
    let pool = shared_pool(3);
    let stop = Arc::new(AtomicBool::new(false));
    let chaos = {
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut panics = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    pool.run(16, &|i| {
                        if i == 3 {
                            panic!("chaos dispatch");
                        }
                    });
                }));
                if r.is_err() {
                    panics += 1;
                }
                std::thread::yield_now();
            }
            panics
        })
    };

    let mut s = sim(
        500,
        910,
        Parallelism::Sharded {
            grid: 2,
            threads: 3,
        },
    );
    let report = s.run(5_000);
    stop.store(true, Ordering::Relaxed);
    let panics = chaos.join().expect("chaos thread must not die");
    assert!(panics > 0, "the chaos loop must actually have panicked");
    assert!(report.completed, "sharded flood must complete");
    assert_eq!(
        fingerprint(&s),
        reference,
        "concurrent pool panics must not change the trajectory"
    );
}
