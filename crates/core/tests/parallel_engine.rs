//! The deterministic-parallelism contract of the chunked engine
//! (`Parallelism::Chunked`), end to end:
//!
//! * **thread-count invariance** — for a fixed `(seed, n)` the whole
//!   trajectory (positions, spread curve, inform times) is bitwise
//!   identical across pool sizes {1, 2, 8} *and* the environment
//!   default (`threads: 0`), so `FASTFLOOD_THREADS` can only change
//!   wall-clock, never results;
//! * **engine lockstep under parallelism** — the parallel Incremental
//!   and auto-engaged Adaptive paths (sharded stale join, sharded
//!   refresh) inform exactly the oracle's sets, for every protocol,
//!   including mid-run crashes;
//! * **sequential default** — `SimConfig` still defaults to the
//!   single-stream engine, whose path reads none of the chunk
//!   machinery (the mobility-level lockstep suites pin it bitwise to
//!   the scalar loop).
//!
//! `scripts/tier1.sh` re-runs this suite (and the measured-drift one)
//! with `FASTFLOOD_THREADS=2`, which the `threads: 0` cases pick up.

use fastflood_core::{EngineMode, FloodingSim, Parallelism, Protocol, SimConfig, SourcePlacement};
use fastflood_mobility::{Mrwp, MOVE_CHUNK};
use proptest::prelude::*;

#[allow(clippy::too_many_arguments)]
fn sim(
    n: usize,
    side: f64,
    radius: f64,
    speed: f64,
    seed: u64,
    protocol: Protocol,
    engine: EngineMode,
    parallelism: Parallelism,
    crash_stride: usize,
) -> FloodingSim<Mrwp> {
    let model = Mrwp::new(side, speed).unwrap();
    let mut sim = FloodingSim::new(
        model,
        SimConfig::new(n, radius)
            .seed(seed)
            .source(SourcePlacement::Agent(0))
            .protocol(protocol)
            .engine(engine)
            .parallelism(parallelism),
    )
    .unwrap();
    if crash_stride > 0 {
        for a in (1..n).step_by(crash_stride) {
            sim.crash_agent(a);
        }
    }
    sim
}

/// Bitwise trajectory fingerprint: position bits, inform times, spread.
#[allow(clippy::type_complexity)]
fn fingerprint(sim: &FloodingSim<Mrwp>) -> (Vec<(u64, u64)>, Vec<Option<u32>>, Vec<u32>) {
    (
        sim.positions()
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect(),
        (0..sim.n()).map(|a| sim.inform_time(a)).collect(),
        sim.report().spread,
    )
}

/// The headline determinism property: a multi-chunk flood (several
/// `MOVE_CHUNK` chunks, adaptive engine auto-engaging the parallel
/// incremental join with refreshes and deferrals) is bitwise identical
/// across thread counts and the environment default.
#[test]
fn chunked_trajectories_bitwise_identical_across_thread_counts() {
    let n = 2 * MOVE_CHUNK + 700; // three chunks, ragged tail
    let run = |parallelism: Parallelism| {
        let mut s = sim(
            n,
            (n as f64).sqrt(),
            2.6,
            0.5,
            2010,
            Protocol::Flooding,
            EngineMode::Adaptive,
            parallelism,
            0,
        );
        let report = s.run(4_000);
        assert!(report.completed, "flood must complete");
        assert!(
            s.bucket_join_steps() > 0 && s.incremental_diff_steps() > 0,
            "the run must exercise the parallel join machinery"
        );
        fingerprint(&s)
    };
    let reference = run(Parallelism::Chunked { threads: 1 });
    for parallelism in [
        Parallelism::Chunked { threads: 2 },
        Parallelism::Chunked { threads: 8 },
        Parallelism::Chunked { threads: 0 }, // FASTFLOOD_THREADS / available
    ] {
        assert_eq!(
            run(parallelism),
            reference,
            "{parallelism:?}: trajectory diverged from 1 thread"
        );
    }
}

/// Same invariance through fail-stop churn: crashes force full grid
/// resyncs mid-run, and the crash surgery must not perturb chunk
/// streams or merge order.
#[test]
fn chunked_invariance_survives_mid_run_crashes() {
    let n = MOVE_CHUNK + 811; // two chunks
    let run = |threads: usize| {
        let mut s = sim(
            n,
            40.0,
            1.8,
            0.4,
            77,
            Protocol::Flooding,
            EngineMode::Incremental,
            Parallelism::Chunked { threads },
            0,
        );
        for t in 1..=600u32 {
            if t % 50 == 0 {
                for a in (t as usize % 5 + 1..n).step_by(131) {
                    s.crash_agent(a);
                }
            }
            s.step();
            if s.all_informed() {
                break;
            }
        }
        fingerprint(&s)
    };
    let one = run(1);
    assert_eq!(run(2), one, "2 threads diverged");
    assert_eq!(run(8), one, "8 threads diverged");
}

/// The parallel engine is a *different* stochastic sample than the
/// sequential single-stream engine (per-chunk streams), while the
/// sequential default stays the default — both facts the docs promise.
#[test]
fn sequential_default_and_stream_split() {
    assert_eq!(SimConfig::new(10, 1.0).parallelism, Parallelism::Sequential);
    let seq = {
        let mut s = sim(
            400,
            20.0,
            2.0,
            0.5,
            5,
            Protocol::Flooding,
            EngineMode::Adaptive,
            Parallelism::Sequential,
            0,
        );
        assert_eq!(s.parallel_threads(), 0);
        s.run(4_000)
    };
    let par = {
        let mut s = sim(
            400,
            20.0,
            2.0,
            0.5,
            5,
            Protocol::Flooding,
            EngineMode::Adaptive,
            Parallelism::Chunked { threads: 2 },
            0,
        );
        assert_eq!(s.parallel_threads(), 2);
        s.run(4_000)
    };
    assert!(seq.completed && par.completed);
    // same process, different sample: the move draws come from chunk
    // streams, so the spread curves (essentially surely) differ
    assert_ne!(
        seq.spread, par.spread,
        "chunked mode must draw from per-chunk streams, not the main stream"
    );
}

/// `Chunked {{ threads: 0 }}` resolves through the shared
/// `default_threads()` (FASTFLOOD_THREADS, else available parallelism).
#[test]
fn env_default_thread_resolution() {
    let s = sim(
        50,
        10.0,
        1.0,
        0.3,
        1,
        Protocol::Flooding,
        EngineMode::Adaptive,
        Parallelism::Chunked { threads: 0 },
        0,
    );
    assert_eq!(s.parallel_threads(), fastflood_parallel::default_threads());
}

fn lockstep_parallel(
    n: usize,
    seed: u64,
    protocol: Protocol,
    under_test: EngineMode,
    parallelism: Parallelism,
    crash_stride: usize,
    steps: u32,
) {
    let build = |engine| {
        sim(
            n,
            18.0,
            2.5,
            0.6,
            seed,
            protocol,
            engine,
            parallelism,
            crash_stride,
        )
    };
    let mut tested = build(under_test);
    let mut oracle = build(EngineMode::Oracle);
    for t in 1..=steps {
        let a = tested.step();
        let b = oracle.step();
        prop_assert_eq!(
            a,
            b,
            "step {} newly-informed counts diverged (n={}, seed={}, {:?}, {:?})",
            t,
            n,
            seed,
            protocol,
            under_test
        );
        prop_assert_eq!(
            tested.informed(),
            oracle.informed(),
            "step {} informed sets diverged (n={}, seed={}, {:?}, {:?})",
            t,
            n,
            seed,
            protocol,
            under_test
        );
        if tested.all_informed() {
            break;
        }
    }
    prop_assert_eq!(tested.report(), oracle.report());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Parallel Incremental == parallel Oracle: both sims share chunk
    /// streams (identical moves), so any divergence is a bug in the
    /// sharded join/refresh, not noise.
    #[test]
    fn parallel_incremental_flooding_matches_oracle(
        seed in 0u64..1000,
        n in 40usize..160,
        stride in 0usize..6,
    ) {
        lockstep_parallel(
            n, seed, Protocol::Flooding, EngineMode::Incremental,
            Parallelism::Chunked { threads: 2 }, stride, 400,
        );
    }

    /// The environment-default pool (tier-1 re-runs this suite under
    /// FASTFLOOD_THREADS=2) through the same lockstep.
    #[test]
    fn parallel_incremental_env_default_matches_oracle(seed in 0u64..500, n in 40usize..120) {
        lockstep_parallel(
            n, seed, Protocol::Flooding, EngineMode::Incremental,
            Parallelism::Chunked { threads: 0 }, 3, 400,
        );
    }

    #[test]
    fn parallel_incremental_parsimonious_matches_oracle(
        seed in 0u64..1000,
        n in 40usize..140,
        p in 0.05f64..0.95,
    ) {
        // the coin subset rides the main stream; only the uninformed
        // grid is maintained (and refreshed sharded)
        lockstep_parallel(
            n, seed, Protocol::Parsimonious { p }, EngineMode::Incremental,
            Parallelism::Chunked { threads: 2 }, 0, 400,
        );
    }

    #[test]
    fn parallel_gossip_matches_oracle(seed in 0u64..500, n in 40usize..140, k in 1usize..6) {
        // gossip transmit stays sequential (shared adaptive path); the
        // parallel move pass must leave its sampling stream untouched
        lockstep_parallel(
            n, seed, Protocol::Gossip { k }, EngineMode::Adaptive,
            Parallelism::Chunked { threads: 2 }, 3, 400,
        );
    }
}

/// Dense regime at real size: the adaptive policy auto-engages the
/// incrementally maintained join with the sharded parallel kernels, and
/// stays lockstep-identical to the brute-force oracle — including
/// refresh steps (sharded `update_moved`) and deferred stale joins.
#[test]
fn parallel_adaptive_engages_join_in_dense_regime_and_matches_oracle() {
    let n = 4_096;
    let parallelism = Parallelism::Chunked { threads: 2 };
    let build = |engine| {
        sim(
            n,
            (n as f64).sqrt(),
            3.2,
            0.8,
            2010,
            Protocol::Flooding,
            engine,
            parallelism,
            0,
        )
    };
    let mut adaptive = build(EngineMode::Adaptive);
    let mut oracle = build(EngineMode::Oracle);
    for _ in 0..600 {
        adaptive.step();
        oracle.step();
        assert_eq!(
            adaptive.informed(),
            oracle.informed(),
            "parallel auto-engaged join diverged from the oracle"
        );
        if adaptive.all_informed() {
            break;
        }
    }
    assert!(adaptive.all_informed(), "dense flood must complete");
    assert!(
        adaptive.bucket_join_steps() > 0,
        "the dense regime must have auto-engaged the bucket join"
    );
    assert!(
        adaptive.incremental_deferred_steps() > 0,
        "some steps must defer re-binning entirely (stale parallel join)"
    );
    assert!(
        adaptive.incremental_diff_steps() > adaptive.incremental_deferred_steps(),
        "some diff steps must be sharded refresh passes"
    );
    assert_eq!(adaptive.report(), oracle.report());
}

/// Mid-run crashes under the parallel engine: resyncs via full rebuilds
/// without diverging from the oracle — the parallel analogue of the
/// sequential crash-resync test.
#[test]
fn parallel_incremental_survives_mid_run_crashes_and_resyncs() {
    let n = 300;
    let parallelism = Parallelism::Chunked { threads: 2 };
    let build = |engine| {
        let model = Mrwp::new(50.0, 0.3).unwrap();
        FloodingSim::new(
            model,
            SimConfig::new(n, 1.5)
                .seed(77)
                .source(SourcePlacement::Agent(0))
                .engine(engine)
                .parallelism(parallelism),
        )
        .unwrap()
    };
    let mut inc = build(EngineMode::Incremental);
    let mut oracle = build(EngineMode::Oracle);
    for t in 1..=3000u32 {
        if t % 40 == 0 {
            for a in (t as usize % 7 + 1..n).step_by(97) {
                inc.crash_agent(a);
                oracle.crash_agent(a);
            }
        }
        inc.step();
        oracle.step();
        assert_eq!(
            inc.informed(),
            oracle.informed(),
            "step {t}: parallel incremental diverged after mid-run crashes"
        );
        if inc.all_informed() {
            break;
        }
    }
    assert_eq!(inc.report(), oracle.report());
    assert!(
        inc.incremental_full_rebuilds() >= 2,
        "each crash batch must force a fresh resync"
    );
    assert!(
        inc.incremental_deferred_steps() > 0,
        "between crashes the engine must defer with stale parallel joins"
    );
}

/// Cloned sims (the bench harness's warm-state pattern) share the pool
/// and continue their chunk streams independently and identically.
#[test]
fn cloned_parallel_sims_replay_identically() {
    let mut warm = sim(
        800,
        100.0,
        1.5,
        0.2,
        9,
        Protocol::Flooding,
        EngineMode::Incremental,
        Parallelism::Chunked { threads: 2 },
        0,
    );
    for _ in 0..100 {
        warm.step();
    }
    assert!(!warm.all_informed(), "warm state must be mid-flood");
    let mut a = warm.clone();
    let mut b = warm.clone();
    for _ in 0..150 {
        a.step();
        b.step();
    }
    assert_eq!(fingerprint(&a), fingerprint(&b), "clones diverged");
}
