//! Property tests for the simulation core, centered on the paper's
//! combinatorial lemmas.

use fastflood_core::{FloodingSim, SimConfig, SimParams, SourcePlacement, ZoneMap};
use fastflood_geom::Cell;
use fastflood_mobility::Mrwp;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Lemma 9 asserts |∂B| ≥ √min(|B|, |CZ|−|B|) for every B ⊆ CZ.
/// We attack it with three families of random subsets: uniform samples,
/// connected blobs grown by BFS, and row-aligned slabs.
#[test]
fn lemma9_expansion_random_subsets() {
    let params = SimParams::standard(10_000, 9.0, 1.0).unwrap();
    let zones = ZoneMap::new(&params).unwrap();
    let central: Vec<Cell> = zones.central_cells().collect();
    assert!(central.len() > 50, "need a sizable CZ for this test");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);

    // family 1: uniform random subsets of many sizes
    for trial in 0..300 {
        let size = 1 + (trial * 7) % (central.len() - 1);
        let mut cells = central.clone();
        cells.shuffle(&mut rng);
        cells.truncate(size);
        assert!(
            zones.expansion_holds(&cells),
            "uniform subset of size {size} violated Lemma 9"
        );
    }

    // family 2: BFS-grown connected blobs (the adversarial shape for
    // expansion bounds)
    for trial in 0..100 {
        let start = central[rng.gen_range(0..central.len())];
        let target = 1 + (trial * 13) % (central.len() - 1);
        let mut blob = vec![start];
        let mut frontier = vec![start];
        while blob.len() < target && !frontier.is_empty() {
            let cur = frontier.remove(0);
            for nb in zones.grid().neighbors4(cur) {
                if zones.is_central(nb) && !blob.contains(&nb) {
                    blob.push(nb);
                    frontier.push(nb);
                    if blob.len() >= target {
                        break;
                    }
                }
            }
        }
        assert!(
            zones.expansion_holds(&blob),
            "BFS blob of size {} violated Lemma 9",
            blob.len()
        );
    }

    // family 3: row slabs (the tight case in the paper's proof)
    let m = zones.grid().m();
    for rows in 1..m {
        let slab: Vec<Cell> = central.iter().copied().filter(|c| c.row < rows).collect();
        if slab.is_empty() || slab.len() == central.len() {
            continue;
        }
        assert!(
            zones.expansion_holds(&slab),
            "row slab of {rows} rows violated Lemma 9"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spread_curve_is_monotone_and_bounded(
        n in 20usize..200,
        r_frac in 0.05f64..0.4,
        v_frac in 0.0f64..0.1,
        seed in 0u64..500,
    ) {
        let side = 30.0;
        let model = Mrwp::new(side, v_frac * side).unwrap();
        let mut sim = FloodingSim::new(
            model,
            SimConfig::new(n, r_frac * side).seed(seed),
        )
        .unwrap();
        let report = sim.run(200);
        prop_assert_eq!(report.spread[0], 1, "starts with only the source");
        for w in report.spread.windows(2) {
            prop_assert!(w[0] <= w[1], "informed count must never decrease");
        }
        for &c in &report.spread {
            prop_assert!(c as usize <= n);
        }
        if report.completed {
            prop_assert_eq!(*report.spread.last().unwrap() as usize, n);
            prop_assert!(report.flooding_time.unwrap() <= report.steps_run);
        }
    }

    #[test]
    fn flooding_time_monotone_in_radius(
        n in 30usize..120,
        seed in 0u64..200,
    ) {
        // same seed, same model: a larger radius can only flood (weakly)
        // faster in distribution; we check the strong version on averages
        // of 3 seeds to keep flakiness at zero for the sampled range
        let side = 25.0;
        let mut total_small = 0u64;
        let mut total_large = 0u64;
        for k in 0..3u64 {
            let model = Mrwp::new(side, 1.0).unwrap();
            let t_small = FloodingSim::new(
                model.clone(),
                SimConfig::new(n, 2.0).seed(seed * 31 + k),
            )
            .unwrap()
            .run(100_000)
            .flooding_time
            .unwrap() as u64;
            let t_large = FloodingSim::new(
                model,
                SimConfig::new(n, 8.0).seed(seed * 31 + k),
            )
            .unwrap()
            .run(100_000)
            .flooding_time
            .unwrap() as u64;
            total_small += t_small;
            total_large += t_large;
        }
        prop_assert!(
            total_large <= total_small,
            "R=8 took {total_large}, R=2 took {total_small}"
        );
    }

    #[test]
    fn zone_classification_matches_threshold(
        n in 1_000usize..20_000,
        r_mult in 2.0f64..6.0,
    ) {
        let params = SimParams::standard(n, r_mult * SimParams::standard(n, 1.0, 0.0).unwrap().radius_scale(), 0.1).unwrap();
        let zones = ZoneMap::new(&params).unwrap();
        for cell in zones.grid().cells() {
            let mass = zones.mass(cell);
            prop_assert_eq!(
                zones.is_central(cell),
                mass >= params.central_zone_threshold(),
                "cell {} mass {} vs threshold {}",
                cell,
                mass,
                params.central_zone_threshold()
            );
        }
        // total CZ mass dominates
        prop_assert!(zones.central_mass() >= 0.5);
    }

    #[test]
    fn boundary_cells_are_adjacent_and_outside(
        seed in 0u64..200,
        size_frac in 0.05f64..0.95,
    ) {
        let params = SimParams::standard(4_000, 8.0, 1.0).unwrap();
        let zones = ZoneMap::new(&params).unwrap();
        let mut central: Vec<Cell> = zones.central_cells().collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        central.shuffle(&mut rng);
        let size = ((central.len() as f64 * size_frac) as usize).max(1);
        let b: Vec<Cell> = central[..size].to_vec();
        let boundary = zones.boundary(&b);
        for cell in &boundary {
            prop_assert!(zones.is_central(*cell));
            prop_assert!(!b.contains(cell), "boundary cell inside B");
            prop_assert!(
                b.iter().any(|bc| bc.is_adjacent4(*cell)),
                "boundary cell must touch B"
            );
        }
    }
}

#[test]
fn source_in_suburb_vs_center_both_complete() {
    // the paper's headline: suburb sources are not fundamentally slower
    let params = SimParams::standard(900, 5.0, 0.5).unwrap();
    let model = Mrwp::new(params.side(), params.speed()).unwrap();
    for placement in [SourcePlacement::Center, SourcePlacement::SwCorner] {
        let mut sim = FloodingSim::new(
            model.clone(),
            SimConfig::new(params.n(), params.radius())
                .seed(77)
                .source(placement),
        )
        .unwrap();
        let report = sim.run(50_000);
        assert!(report.completed, "placement {placement:?} failed to flood");
    }
}
