//! Deterministic intra-step parallelism for the flooding workspace: a
//! retained worker pool plus disjoint-chunk dispatch helpers.
//!
//! # Why a hand-rolled pool
//!
//! The workspace builds offline (no rayon in the vendored dependency
//! set), and the engine's parallelism contract is stricter than "go
//! fast": results must be **deterministic for a fixed `(seed, n, chunk
//! layout)` whatever the thread count or scheduling**. The pool
//! therefore does one deliberately simple thing — execute task indices
//! `0..tasks` exactly once each, on long-lived worker threads plus the
//! dispatching thread, and not return until every task finished. All
//! ordering-sensitive merging (per-chunk RNG streams, canonical-order
//! event and output concatenation) lives in the callers; the pool only
//! guarantees exactly-once execution and completion.
//!
//! # Nested use
//!
//! Pools compose without oversubscribing cores: a `run` issued from
//! inside another pool task (or while the same pool is busy on another
//! thread) executes inline on the calling thread. Likewise a pool
//! *constructed* inside a pool task spawns no workers. Combined with
//! the deterministic task semantics this makes nesting safe: an inner
//! parallel step inside a [`run_ctx`]-driven trial sweep produces the
//! same results it would on its own pool, just without extra threads.
//!
//! # Safety
//!
//! This is the only *library* crate in the workspace that contains
//! `unsafe` code (`fastflood-core`, `-mobility` and `-spatial` all
//! `forbid(unsafe_code)`; the `floodd` binary additionally carries one
//! `unsafe` block registering its SIGTERM handler). The helpers below
//! expose safe APIs whose
//! soundness rests on two pool invariants: each task index is handed to
//! exactly one execution, and [`WorkerPool::run`] does not return (even
//! by unwinding) before every worker is done with the job.

#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, Weak};
use std::thread::JoinHandle;

/// Default worker-thread count: the `FASTFLOOD_THREADS` environment
/// variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
///
/// Everything that spins up parallelism by default — the engine's
/// `Parallelism::Chunked { threads: 0 }`, the experiment CLI's
/// `--threads` default — resolves through this one function, so one
/// environment variable pins the whole process.
pub fn default_threads() -> usize {
    let env = std::env::var("FASTFLOOD_THREADS").ok();
    threads_from_env(env.as_deref())
}

/// The parse behind [`default_threads`], split out for testability:
/// `Some` positive integer wins, anything else falls back to available
/// parallelism.
fn threads_from_env(value: Option<&str>) -> usize {
    if let Some(v) = value {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    /// Whether the current thread is executing a pool task (worker
    /// threads while running a job, and the dispatcher while
    /// participating in its own dispatch). Nested `run` calls observe
    /// it and execute inline.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

fn in_pool_task() -> bool {
    IN_POOL_TASK.with(Cell::get)
}

/// Lifetime-erased pointer to the job closure; published to workers
/// under the state mutex.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared execution is the whole point)
// and the dispatcher keeps it alive until every worker has finished
// with it, so sending the pointer to worker threads is sound.
unsafe impl Send for Job {}

/// Mutex-guarded dispatch state of the pool.
struct JobState {
    /// Bumped per dispatch; workers track the last epoch they served.
    epoch: u64,
    /// The current job (`None` between dispatches).
    job: Option<Job>,
    /// Number of task indices in the current dispatch.
    tasks: usize,
    /// Workers that have not yet finished the current epoch.
    running: usize,
    /// The payload of the first task panic of the current epoch; the
    /// dispatcher re-raises it with `resume_unwind` after the barrier,
    /// so `panic::catch_unwind` callers above the pool see the original
    /// panic value (assert messages, custom payloads), not a generic
    /// pool error.
    panic_payload: Option<Box<dyn std::any::Any + Send + 'static>>,
    /// The pool is being dropped; workers exit.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<JobState>,
    /// Workers wait here for a new epoch.
    work: Condvar,
    /// The dispatcher waits here for `running == 0`.
    done: Condvar,
    /// Next task index to claim; `fetch_add` hands each index to
    /// exactly one claimant.
    next: AtomicUsize,
}

fn lock_state(shared: &PoolShared) -> MutexGuard<'_, JobState> {
    // a panic inside a job unwinds outside the lock, so poisoning can
    // only come from a panic we are already propagating — keep going
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

fn worker(shared: Arc<PoolShared>) {
    let mut seen = 0u64;
    loop {
        let (job, tasks) = {
            let mut st = lock_state(&shared);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    break;
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            seen = st.epoch;
            (st.job.expect("a published epoch carries a job"), st.tasks)
        };
        // decrements `running` however the task loop exits; the
        // dispatcher blocks on it, which is what keeps the job pointer
        // alive for the whole loop below
        let _running = RunningGuard { shared: &shared };
        IN_POOL_TASK.with(|f| f.set(true));
        loop {
            let t = shared.next.fetch_add(1, Ordering::Relaxed);
            if t >= tasks {
                break;
            }
            // A panicking task must not kill the worker thread: the
            // pool would silently lose parallelism for the rest of its
            // life. Catch it, flag the epoch (the dispatcher re-raises
            // after the barrier), abandon the rest of this epoch's
            // claims, and keep serving future epochs.
            //
            // SAFETY: the dispatcher does not return before this guard
            // reports completion, so the closure is alive; `fetch_add`
            // hands this index to this execution only.
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (*job.0)(t) }));
            if let Err(payload) = outcome {
                let mut st = lock_state(&shared);
                // keep the first payload when several tasks panic in
                // one epoch; later ones are casualties of the same bug
                if st.panic_payload.is_none() {
                    st.panic_payload = Some(payload);
                }
                break;
            }
        }
        IN_POOL_TASK.with(|f| f.set(false));
    }
}

struct RunningGuard<'a> {
    shared: &'a PoolShared,
}

impl Drop for RunningGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock_state(self.shared);
        st.running -= 1;
        if st.running == 0 {
            self.shared.done.notify_all();
        }
    }
}

/// A retained pool of worker threads executing task indices exactly
/// once each.
///
/// Construction spawns `threads - 1` long-lived workers (the
/// dispatching thread is the remaining worker), so per-dispatch cost is
/// a condvar wake rather than thread spawns — cheap enough to dispatch
/// two or three times per simulation step. Dropping the pool joins the
/// workers.
///
/// # Examples
///
/// ```
/// use fastflood_parallel::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let sum = AtomicUsize::new(0);
/// pool.run(100, &|i| {
///     sum.fetch_add(i, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 99 * 100 / 2);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes dispatches; a busy pool runs late-comers inline.
    dispatch: Mutex<()>,
    threads: usize,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` total executors (`threads - 1`
    /// spawned workers plus the dispatching thread); `threads` is
    /// clamped to at least 1.
    ///
    /// A pool constructed from inside another pool's task spawns **no**
    /// workers (all its dispatches run inline), so nested parallel code
    /// cannot oversubscribe the machine.
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let workers = if in_pool_task() { 0 } else { threads - 1 };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(JobState {
                epoch: 0,
                job: None,
                tasks: 0,
                running: 0,
                panic_payload: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            next: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fastflood-worker-{i}"))
                    .spawn(move || worker(sh))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            dispatch: Mutex::new(()),
            threads,
        }
    }

    /// The configured executor count (the `threads` passed to
    /// [`WorkerPool::new`], clamped to at least 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `job(t)` for every `t in 0..tasks`, each exactly once,
    /// distributed over the workers and the calling thread; returns
    /// when all have finished.
    ///
    /// Runs inline on the calling thread (same semantics, no cross-
    /// thread dispatch) when the pool has no workers, `tasks <= 1`, the
    /// call comes from inside a pool task, or the pool is busy with a
    /// dispatch from another thread.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked (after all tasks finished or
    /// unwound), re-raising the **first panicking task's own payload**
    /// on the dispatching thread via `resume_unwind` — so the original
    /// message survives — and leaving the pool fully reusable (every
    /// worker stays alive and serves subsequent dispatches).
    pub fn run(&self, tasks: usize, job: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if self.handles.is_empty() || tasks == 1 || in_pool_task() {
            for t in 0..tasks {
                job(t);
            }
            return;
        }
        let _dispatch = match self.dispatch.try_lock() {
            Ok(guard) => guard,
            // a previous dispatcher panicked mid-participation; its
            // epoch still completed (`WaitForWorkers` runs on unwind),
            // so the pool state is clean — recover the lock and keep
            // dispatching on the workers
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                for t in 0..tasks {
                    job(t);
                }
                return;
            }
        };
        let shared = &*self.shared;
        // SAFETY: pure lifetime erasure on the trait-object pointer; the
        // `WaitForWorkers` guard below keeps this call from returning
        // (even by unwinding) until every worker finished the epoch, so
        // the pointee outlives all uses.
        let job_ptr = Job(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(job)
        });
        {
            let mut st = lock_state(shared);
            st.job = Some(job_ptr);
            st.tasks = tasks;
            st.running = self.handles.len();
            st.panic_payload = None;
            // workers read `next` only after observing the new epoch
            // under the same mutex, so the relaxed store is ordered
            shared.next.store(0, Ordering::Relaxed);
            st.epoch = st.epoch.wrapping_add(1);
            shared.work.notify_all();
        }
        {
            // block until every worker reports done, whether the
            // participation loop below returns or unwinds
            let _wait = WaitForWorkers(shared);
            IN_POOL_TASK.with(|f| f.set(true));
            let _flag = ResetFlag;
            loop {
                let t = shared.next.fetch_add(1, Ordering::Relaxed);
                if t >= tasks {
                    break;
                }
                job(t);
            }
        }
        let payload = lock_state(shared).panic_payload.take();
        if let Some(payload) = payload {
            // re-raise the task's own panic value: callers that catch
            // and inspect (test harnesses, crash reporters) see the
            // original message, and the pool stays reusable
            std::panic::resume_unwind(payload);
        }
    }
}

/// Registry entries: live pools keyed by thread count, held weakly so
/// an idle process drops its workers.
type PoolRegistry = Vec<(usize, Weak<WorkerPool>)>;

/// Process-wide registry behind [`shared_pool`].
fn shared_registry() -> &'static Mutex<PoolRegistry> {
    static REGISTRY: OnceLock<Mutex<PoolRegistry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Returns the process-shared pool for `threads` executors, creating it
/// on first use.
///
/// Callers that each want "a pool with T threads" (several concurrent
/// sims in a job runtime, repeated sim constructions in a long-lived
/// server) get **one** set of worker threads instead of one per caller:
/// the registry hands out the same `Arc<WorkerPool>` for equal thread
/// counts as long as at least one caller keeps it alive, and lets the
/// workers exit when the last reference drops (the registry holds only
/// a [`Weak`]). Contention is safe by construction — a pool that is
/// busy with a dispatch from another thread runs late-comers inline
/// ([`WorkerPool::run`]), so sharing never changes results, only how
/// many OS threads exist.
///
/// Calls from inside a pool task bypass the registry and return a
/// private (workerless) pool: registering one would hand outer callers
/// a pool that can never parallelize.
///
/// # Examples
///
/// ```
/// use fastflood_parallel::shared_pool;
/// use std::sync::Arc;
///
/// let a = shared_pool(3);
/// let b = shared_pool(3);
/// assert!(Arc::ptr_eq(&a, &b), "equal thread counts share one pool");
/// assert!(!Arc::ptr_eq(&a, &shared_pool(2)));
/// ```
pub fn shared_pool(threads: usize) -> Arc<WorkerPool> {
    let threads = threads.max(1);
    if in_pool_task() {
        return Arc::new(WorkerPool::new(threads));
    }
    let mut reg = shared_registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    // drop registry entries whose pools have died before scanning, so
    // the list stays bounded by the number of distinct live counts
    reg.retain(|(_, weak)| weak.strong_count() > 0);
    if let Some(pool) = reg
        .iter()
        .find(|(t, _)| *t == threads)
        .and_then(|(_, weak)| weak.upgrade())
    {
        return pool;
    }
    let pool = Arc::new(WorkerPool::new(threads));
    reg.push((threads, Arc::downgrade(&pool)));
    pool
}

/// Clears the dispatcher's in-task flag however its participation loop
/// exits.
struct ResetFlag;

impl Drop for ResetFlag {
    fn drop(&mut self) {
        IN_POOL_TASK.with(|f| f.set(false));
    }
}

/// Blocks until `running == 0` and unpublishes the job — on the normal
/// path *and* when the dispatcher's own task panics, which is what
/// makes handing stack borrows to workers sound.
struct WaitForWorkers<'a>(&'a PoolShared);

impl Drop for WaitForWorkers<'_> {
    fn drop(&mut self) {
        let mut st = lock_state(self.0);
        while st.running > 0 {
            st = self.0.done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_state(&self.shared);
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            // a worker that panicked already flagged the dispatch that
            // saw it; joining is best-effort shutdown
            let _ = h.join();
        }
    }
}

/// Raw pointer wrapper that asserts cross-thread shareability; every
/// use site guarantees disjoint access by construction.
///
/// The pointer is only reachable through [`SendPtr::get`] so closures
/// capture the whole wrapper (edition-2021 disjoint capture would
/// otherwise capture the raw field itself and lose the `Sync` assertion).
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: the helpers below hand each element/chunk to exactly one task
// execution, so shared captures of the base pointer never alias.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Calls `f(i, &mut ctx[i])` for every `i`, one task per context
/// element, distributed over the pool.
///
/// The canonical way to give each parallel task its own mutable
/// scratch (per-chunk RNG streams, per-shard output buffers) without
/// locks: contexts are disjoint by index, and the caller merges them
/// in deterministic (index) order afterwards.
///
/// # Examples
///
/// ```
/// use fastflood_parallel::{run_ctx, WorkerPool};
///
/// let pool = WorkerPool::new(2);
/// let mut squares = vec![0usize; 10];
/// run_ctx(&pool, &mut squares, |i, out| *out = i * i);
/// assert_eq!(squares[7], 49);
/// ```
pub fn run_ctx<Ctx, F>(pool: &WorkerPool, ctx: &mut [Ctx], f: F)
where
    Ctx: Send,
    F: Fn(usize, &mut Ctx) + Sync,
{
    let n = ctx.len();
    let base = SendPtr(ctx.as_mut_ptr());
    pool.run(n, &move |i| {
        // SAFETY: `run` hands each index in 0..n to exactly one task
        // execution, so element accesses are disjoint; `ctx` outlives
        // `run`, which does not return until all tasks finished.
        let item = unsafe { &mut *base.get().add(i) };
        f(i, item);
    });
}

/// Generates the `run_chunksN` family: N equal-length slices split into
/// fixed chunks of `chunk_len`, each chunk handed (with its private
/// context element) to exactly one pool task. One macro body so every
/// arity shares the same geometry, assertions, and safety argument.
macro_rules! define_run_chunks {
    ($(#[$attr:meta])* $name:ident, $($ty:ident: $p:ident),+) => {
        $(#[$attr])*
        pub fn $name<$($ty,)+ Ctx, F>(
            pool: &WorkerPool,
            chunk_len: usize,
            $($p: &mut [$ty],)+
            ctx: &mut [Ctx],
            f: F,
        ) where
            $($ty: Send,)+
            Ctx: Send,
            F: Fn(usize, $(&mut [$ty],)+ &mut Ctx) + Sync,
        {
            assert!(chunk_len > 0, "chunk length must be positive");
            let mut len: Option<usize> = None;
            $(match len {
                None => len = Some($p.len()),
                Some(n) => assert_eq!($p.len(), n, "chunked slices must agree on length"),
            })+
            let n = len.expect("at least one slice");
            let chunks = n.div_ceil(chunk_len).max(1);
            assert_eq!(ctx.len(), chunks, "one context per chunk");
            $(let $p = SendPtr($p.as_mut_ptr());)+
            let pctx = SendPtr(ctx.as_mut_ptr());
            pool.run(chunks, &move |i| {
                let lo = i * chunk_len;
                let hi = ((i + 1) * chunk_len).min(n);
                // SAFETY: chunk ranges are disjoint, each chunk index
                // executes exactly once, and the borrows outlive `run`.
                unsafe {
                    f(
                        i,
                        $(std::slice::from_raw_parts_mut($p.get().add(lo), hi - lo),)+
                        &mut *pctx.get().add(i),
                    );
                }
            });
        }
    };
}

define_run_chunks!(
    /// Splits two equal-length slices into fixed chunks of `chunk_len` and
    /// calls `f(chunk_index, a_chunk, b_chunk, &mut ctx[chunk_index])` for
    /// each, distributed over the pool.
    ///
    /// The chunk geometry is a pure function of the slice length (the last
    /// chunk may be short), **not** of the pool's thread count — callers
    /// rely on that for thread-count-independent determinism. `ctx` must
    /// hold exactly one element per chunk (`len.div_ceil(chunk_len).max(1)`).
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths disagree, `chunk_len` is zero, or
    /// `ctx` has the wrong length.
    run_chunks2, A: a, B: b
);

define_run_chunks!(
    /// Three-slice variant of [`run_chunks2`] (states, positions, and a
    /// side array — the AoS move-pass shape).
    run_chunks3, A: a, B: b, C: c
);

define_run_chunks!(
    /// Six-slice variant of [`run_chunks2`]: the SoA move-pass shape —
    /// three hot lanes, the boundary-flag scratch lane, the cold array,
    /// and positions, all split with one chunk geometry.
    #[allow(clippy::too_many_arguments)]
    run_chunks6, A: a, B: b, C: c, D: d, E: e, F2: f2
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_exactly_once() {
        for threads in [1, 2, 4, 9] {
            let pool = WorkerPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
            pool.run(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {i}, threads {threads}");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_dispatches() {
        let pool = WorkerPool::new(3);
        let sum = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(17, &|i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.into_inner(), 50 * (16 * 17 / 2));
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.run(0, &|_| panic!("no tasks to run"));
    }

    #[test]
    fn nested_dispatch_runs_inline() {
        let pool = WorkerPool::new(4);
        let inner = WorkerPool::new(4);
        let count = AtomicUsize::new(0);
        pool.run(8, &|_| {
            // from inside a pool task, the inner pool must execute
            // inline rather than cross-dispatching
            inner.run(4, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.into_inner(), 32);
    }

    #[test]
    fn pool_created_inside_task_spawns_no_workers() {
        let pool = WorkerPool::new(4);
        let worker_counts = Mutex::new(Vec::new());
        pool.run(2, &|_| {
            let nested = WorkerPool::new(8);
            worker_counts.lock().unwrap().push(nested.handles.len());
            nested.run(3, &|_| {});
        });
        for &w in worker_counts.lock().unwrap().iter() {
            assert_eq!(w, 0, "nested pools must not spawn workers");
        }
    }

    #[test]
    fn task_panic_propagates_to_dispatcher() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(64, &|i| {
                if i == 13 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "panic must reach the dispatcher");
        // the workers caught the panic and stayed alive: the pool keeps
        // its full parallelism, not just an inline fallback
        for h in &pool.handles {
            assert!(!h.is_finished(), "worker died on a task panic");
        }
        let sum = AtomicUsize::new(0);
        pool.run(10, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 45);
    }

    #[test]
    fn task_panic_payload_reaches_the_dispatcher_intact() {
        // the dispatcher must re-raise the task's own panic value, not
        // a generic "a task panicked" message: harnesses above the pool
        // downcast payloads to report what actually went wrong
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(64, &|i| {
                if i == 21 {
                    panic!("distinctive payload {i}");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("payload survives as a string");
        assert_eq!(msg, "distinctive payload 21");
        // and the pool is immediately reusable at full parallelism
        for h in &pool.handles {
            assert!(!h.is_finished(), "worker died on a task panic");
        }
        let sum = AtomicUsize::new(0);
        pool.run(32, &|i| {
            sum.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 32 * 33 / 2);
        // a second panicking dispatch still reports its own payload
        // (the first epoch's payload was consumed, not left behind)
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("second failure");
                }
            });
        }));
        let payload = result.expect_err("second panic must propagate");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("second failure")
        );
    }

    #[test]
    fn workers_survive_a_panic_while_another_task_is_in_flight() {
        // one task parks until the panicking task has run, so the
        // panic (wherever scheduling lands it — a worker or the
        // dispatcher) unwinds while another executor is mid-task; the
        // pool must come out with every worker alive either way
        let pool = WorkerPool::new(3);
        let released = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(64, &|i| {
                if i == 0 {
                    while released.load(Ordering::Relaxed) == 0 {
                        std::thread::yield_now();
                    }
                } else if i == 63 {
                    released.store(1, Ordering::Relaxed);
                    panic!("boom mid-flight");
                }
            });
        }));
        assert!(result.is_err(), "the panic must propagate");
        for h in &pool.handles {
            assert!(!h.is_finished(), "worker died on a task panic");
        }
        // full follow-up dispatch on the same pool completes
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_ctx_gives_each_task_its_context() {
        let pool = WorkerPool::new(4);
        let mut out = vec![0usize; 100];
        run_ctx(&pool, &mut out, |i, o| *o = i + 1);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, i + 1);
        }
    }

    #[test]
    fn run_chunks_partitions_disjointly() {
        let pool = WorkerPool::new(4);
        let n = 1000;
        let mut a = vec![0u32; n];
        let mut b = vec![0u64; n];
        let mut c = vec![0u8; n];
        let chunk = 64;
        let chunks = n.div_ceil(chunk);
        let mut ctx = vec![0usize; chunks];
        run_chunks3(
            &pool,
            chunk,
            &mut a,
            &mut b,
            &mut c,
            &mut ctx,
            |i, ca, cb, cc, n_in| {
                *n_in = ca.len();
                for (k, x) in ca.iter_mut().enumerate() {
                    *x = (i * chunk + k) as u32;
                }
                for x in cb.iter_mut() {
                    *x = i as u64;
                }
                for x in cc.iter_mut() {
                    *x = 1;
                }
            },
        );
        for (k, &x) in a.iter().enumerate() {
            assert_eq!(x, k as u32);
        }
        for (k, &x) in b.iter().enumerate() {
            assert_eq!(x, (k / chunk) as u64);
        }
        assert_eq!(c.iter().map(|&x| x as usize).sum::<usize>(), n);
        assert_eq!(ctx.iter().sum::<usize>(), n, "chunk lengths cover n");
    }

    #[test]
    fn run_chunks2_handles_short_tail_and_empty_input() {
        let pool = WorkerPool::new(2);
        let mut a = vec![0u32; 10];
        let mut b = vec![0u32; 10];
        let mut ctx = vec![(0usize, 0usize); 3];
        run_chunks2(&pool, 4, &mut a, &mut b, &mut ctx, |i, ca, _cb, c| {
            *c = (i, ca.len());
        });
        assert_eq!(ctx, vec![(0, 4), (1, 4), (2, 2)]);

        let mut empty_a: Vec<u32> = Vec::new();
        let mut empty_b: Vec<u32> = Vec::new();
        let mut one = vec![0usize; 1];
        run_chunks2(
            &pool,
            4,
            &mut empty_a,
            &mut empty_b,
            &mut one,
            |_, ca, _, c| {
                *c = ca.len() + 7;
            },
        );
        assert_eq!(one[0], 7, "the empty input still runs its one chunk");
    }

    #[test]
    fn shared_pool_reuses_per_thread_count_and_expires() {
        // distinctive counts so parallel-running tests in this binary
        // don't race us on the same registry slots
        let a = shared_pool(5);
        let b = shared_pool(5);
        assert!(Arc::ptr_eq(&a, &b), "equal counts must share one pool");
        let c = shared_pool(7);
        assert!(!Arc::ptr_eq(&a, &c), "distinct counts get distinct pools");
        assert_eq!(c.threads(), 7);
        // both callers drop their references: the registry's weak entry
        // dies and the next request builds a fresh pool
        drop(a);
        drop(b);
        let d = shared_pool(5);
        assert_eq!(d.threads(), 5);
        let sum = AtomicUsize::new(0);
        d.run(11, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 55);
    }

    #[test]
    fn shared_pool_from_inside_a_task_is_private() {
        let outer = shared_pool(9);
        let inner_is_outer = Mutex::new(Vec::new());
        outer.run(4, &|_| {
            let inner = shared_pool(9);
            inner_is_outer
                .lock()
                .unwrap()
                .push((Arc::ptr_eq(&inner, &outer), inner.handles.len()));
            inner.run(2, &|_| {});
        });
        for &(same, workers) in inner_is_outer.lock().unwrap().iter() {
            assert!(!same, "in-task request must not hand back the busy pool");
            assert_eq!(workers, 0, "in-task pools must not spawn workers");
        }
        // and the private pool was not registered: the registry still
        // serves the original
        assert!(Arc::ptr_eq(&outer, &shared_pool(9)));
    }

    #[test]
    fn threads_from_env_parses_and_falls_back() {
        assert_eq!(threads_from_env(Some("3")), 3);
        assert_eq!(threads_from_env(Some(" 8 ")), 8);
        let fallback = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(threads_from_env(Some("0")), fallback);
        assert_eq!(threads_from_env(Some("soup")), fallback);
        assert_eq!(threads_from_env(None), fallback);
    }

    #[test]
    fn debug_and_threads_accessors() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1, "thread count clamps to 1");
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        assert!(format!("{pool:?}").contains("WorkerPool"));
    }
}
