//! Property tests for the mobility models.

use fastflood_geom::Point;
use fastflood_mobility::{
    distributions, move_chunk_count, BlockRng, ChunkCtx, DiskWalk, Mobility, Mrwp, Placement, Rwp,
    Static, MOVE_CHUNK,
};
use fastflood_parallel::WorkerPool;
use proptest::prelude::*;
use rand::{Rng, RngCore, SeedableRng};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mrwp_agents_confined_and_speed_exact(
        side in 10.0f64..500.0,
        speed_frac in 0.0f64..0.2,
        seed in 0u64..1000,
        steps in 1usize..60,
    ) {
        let speed = speed_frac * side;
        let model = Mrwp::new(side, speed).unwrap();
        let mut r = rng(seed);
        let mut st = model.init_stationary(&mut r);
        let region = model.region();
        for _ in 0..steps {
            let before = model.position(&st);
            let ev = model.step(&mut st, &mut r);
            let after = model.position(&st);
            prop_assert!(region.contains(after), "escaped region: {after}");
            // L1 displacement never exceeds the speed budget
            prop_assert!(before.manhattan(after) <= speed + 1e-9);
            if ev.arrivals == 0 && speed > 0.0 {
                prop_assert!((before.manhattan(after) - speed).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn mrwp_turn_count_at_most_one_per_trip(
        side in 20.0f64..200.0,
        seed in 0u64..500,
    ) {
        let model = Mrwp::new(side, side / 10.0).unwrap();
        let mut r = rng(seed);
        let mut st = model.init_stationary(&mut r);
        for _ in 0..50 {
            let ev = model.step(&mut st, &mut r);
            // turns <= arrivals + 1 (each trip has at most one corner, and
            // at most one unfinished trip is in flight)
            prop_assert!(ev.turns <= ev.arrivals + 1, "{ev:?}");
        }
    }

    #[test]
    fn rwp_euclid_displacement_bounded(
        side in 10.0f64..300.0,
        speed_frac in 0.0f64..0.3,
        seed in 0u64..500,
    ) {
        let speed = speed_frac * side;
        let model = Rwp::new(side, speed).unwrap();
        let mut r = rng(seed);
        let mut st = model.init_stationary(&mut r);
        for _ in 0..30 {
            let before = model.position(&st);
            model.step(&mut st, &mut r);
            let after = model.position(&st);
            prop_assert!(model.region().contains(after));
            prop_assert!(before.euclid(after) <= speed + 1e-9);
        }
    }

    #[test]
    fn disk_walk_trips_bounded_by_walk_radius(
        side in 50.0f64..300.0,
        rho_frac in 0.01f64..0.3,
        seed in 0u64..500,
    ) {
        let rho = rho_frac * side;
        let model = DiskWalk::new(side, rho / 5.0, rho).unwrap();
        let mut r = rng(seed);
        let mut st = model.init_stationary(&mut r);
        let mut prev = model.position(&st);
        for _ in 0..30 {
            model.step(&mut st, &mut r);
            let cur = model.position(&st);
            prop_assert!(model.region().contains(cur));
            // between consecutive steps the agent cannot outrun its speed
            prop_assert!(prev.euclid(cur) <= rho / 5.0 + 1e-9);
            prev = cur;
        }
    }

    #[test]
    fn static_agents_never_move(side in 1.0f64..100.0, seed in 0u64..100) {
        let model = Static::new(side, Placement::Uniform).unwrap();
        let mut r = rng(seed);
        let mut st = model.init_stationary(&mut r);
        let p = model.position(&st);
        for _ in 0..5 {
            model.step(&mut st, &mut r);
            prop_assert_eq!(model.position(&st), p);
        }
    }

    #[test]
    fn spatial_density_nonnegative_inside(
        side in 1.0f64..1000.0,
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
    ) {
        let d = distributions::spatial_density(side, fx * side, fy * side);
        prop_assert!(d >= -1e-15);
        prop_assert!(d <= distributions::spatial_max_density(side) + 1e-15);
    }

    #[test]
    fn marginal_cdf_monotone(side in 1.0f64..500.0, a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let c_lo = distributions::spatial_marginal_cdf(side, lo * side);
        let c_hi = distributions::spatial_marginal_cdf(side, hi * side);
        prop_assert!(c_lo <= c_hi + 1e-12);
        prop_assert!((0.0..=1.0).contains(&c_lo));
    }

    #[test]
    fn destination_masses_always_total_one(
        side in 1.0f64..100.0,
        fx in 0.001f64..0.999,
        fy in 0.001f64..0.999,
    ) {
        let pos = Point::new(fx * side, fy * side);
        let quadrants: f64 = distributions::Quadrant::ALL
            .iter()
            .map(|&q| distributions::quadrant_probability(side, pos, q))
            .sum();
        let cross = distributions::cross_probability(side, pos);
        prop_assert!((quadrants + cross - 1.0).abs() < 1e-9);
        prop_assert!((cross - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rect_mass_monotone_under_inclusion(
        side in 1.0f64..100.0,
        x0 in 0.0f64..0.4,
        y0 in 0.0f64..0.4,
        w in 0.05f64..0.3,
        h in 0.05f64..0.3,
    ) {
        use fastflood_geom::Rect;
        let inner = Rect::new(
            Point::new(x0 * side, y0 * side),
            Point::new((x0 + w) * side, (y0 + h) * side),
        )
        .unwrap();
        let outer = Rect::new(
            Point::new(0.0, 0.0),
            Point::new((x0 + w + 0.1) * side, (y0 + h + 0.1) * side),
        )
        .unwrap();
        let mi = distributions::rect_mass(side, &inner);
        let mo = distributions::rect_mass(side, &outer);
        prop_assert!(mi >= -1e-12);
        prop_assert!(mo + 1e-12 >= mi, "inclusion violated: {mi} > {mo}");
        prop_assert!(mo <= 1.0 + 1e-12);
    }
}

/// Batched stepping must be indistinguishable from the scalar
/// `step_from` loop it replaces: same trajectories (bitwise), same
/// events, same RNG stream, and a measured drift that soundly bounds
/// every agent's displacement while never exceeding the model speed.
fn assert_batch_lockstep<M>(model: &M, n: usize, steps: usize, seed: u64)
where
    M: Mobility,
    M::State: PartialEq,
{
    let mut init_rng = rng(seed);
    let states: Vec<M::State> = (0..n)
        .map(|_| model.init_stationary(&mut init_rng))
        .collect();
    let mut scalar_states = states.clone();
    let mut scalar_positions: Vec<Point> = states.iter().map(|s| model.position(s)).collect();
    let mut positions = scalar_positions.clone();
    let mut batch = model.batch_from_states(states);
    let mut batch_rng = rng(seed ^ 0x9e37_79b9);
    let mut scalar_rng = rng(seed ^ 0x9e37_79b9);
    for step in 0..steps {
        let mut batch_events = Vec::new();
        let drift = model.step_batch(&mut batch, &mut positions, &mut batch_rng, |i, ev| {
            batch_events.push((i, ev))
        });
        let mut scalar_events = Vec::new();
        let mut max_disp = 0.0f64;
        for (i, state) in scalar_states.iter_mut().enumerate() {
            let before = scalar_positions[i];
            let (p, ev) = model.step_from(state, before, &mut scalar_rng);
            scalar_positions[i] = p;
            max_disp = max_disp.max(before.euclid(p));
            if ev.turns | ev.arrivals != 0 {
                scalar_events.push((i, ev));
            }
        }
        for i in 0..n {
            assert_eq!(
                (positions[i].x.to_bits(), positions[i].y.to_bits()),
                (
                    scalar_positions[i].x.to_bits(),
                    scalar_positions[i].y.to_bits()
                ),
                "step {step}: agent {i} position diverged from the scalar loop"
            );
            assert!(
                model.batch_state(&batch, i) == scalar_states[i],
                "step {step}: agent {i} state diverged from the scalar loop"
            );
        }
        assert_eq!(batch_events, scalar_events, "step {step}: events diverged");
        assert!(
            drift + 1e-12 >= max_disp,
            "step {step}: measured drift {drift} under-counts displacement {max_disp}"
        );
        assert!(
            drift <= model.speed() + 1e-9,
            "step {step}: measured drift {drift} exceeds the speed bound {}",
            model.speed()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mrwp_step_batch_matches_scalar_loop(
        seed in 0u64..1000,
        n in 1usize..40,
        speed_frac in 0.001f64..0.3,
        pause in 0u32..4,
    ) {
        let side = 60.0;
        let model = Mrwp::new(side, speed_frac * side).unwrap().with_pause(pause);
        assert_batch_lockstep(&model, n, 40, seed);
    }

    #[test]
    fn rwp_step_batch_matches_scalar_loop(seed in 0u64..1000, n in 1usize..40) {
        let model = Rwp::new(80.0, 2.5).unwrap();
        assert_batch_lockstep(&model, n, 30, seed);
    }

    #[test]
    fn disk_walk_step_batch_matches_scalar_loop(seed in 0u64..1000, n in 1usize..40) {
        let model = DiskWalk::new(80.0, 2.0, 9.0).unwrap();
        assert_batch_lockstep(&model, n, 30, seed);
    }

    #[test]
    fn street_mrwp_step_batch_matches_scalar_loop(seed in 0u64..1000, n in 1usize..30) {
        let model = fastflood_mobility::StreetMrwp::new(80.0, 1.5, 8).unwrap();
        assert_batch_lockstep(&model, n, 30, seed);
    }

    /// Pause-heavy regime: large pauses and a fast speed push most
    /// agents through the boundary pass (pause countdowns, trip
    /// resampling) every few steps — the advance kernel's flag routing
    /// and the boundary pass's RNG draw order both get maximal traffic.
    #[test]
    fn mrwp_pause_heavy_step_batch_matches_scalar_loop(
        seed in 0u64..1000,
        n in 1usize..40,
        pause in 4u32..12,
    ) {
        let side = 60.0;
        let model = Mrwp::new(side, 0.3 * side).unwrap().with_pause(pause);
        assert_batch_lockstep(&model, n, 40, seed);
    }

    /// Street-grid analogue of the pause-heavy MRWP property: large
    /// red-light pauses plus a fast speed maximize arrival/pause traffic
    /// through the AoS batch path.
    #[test]
    fn street_mrwp_pause_heavy_step_batch_matches_scalar_loop(
        seed in 0u64..1000,
        n in 1usize..30,
        pause in 4u32..12,
    ) {
        let side = 80.0;
        let model = fastflood_mobility::StreetMrwp::new(side, 0.3 * side, 8)
            .unwrap()
            .with_pause(pause);
        assert_batch_lockstep(&model, n, 40, seed);
    }

    /// Speed-class mixtures route every agent through its component
    /// model; the AoS batch path must stay bitwise-faithful to the
    /// scalar loop across classes (including paused ones).
    #[test]
    fn mixture_step_batch_matches_scalar_loop(
        seed in 0u64..1000,
        n in 1usize..30,
        pause in 0u32..6,
    ) {
        let side = 60.0;
        let mix = fastflood_mobility::Mixture::new(
            vec![
                Mrwp::new(side, 0.02 * side).unwrap(),
                Mrwp::new(side, 0.25 * side).unwrap().with_pause(pause),
            ],
            vec![0.6, 0.4],
        )
        .unwrap();
        assert_batch_lockstep(&mix, n, 30, seed);
    }

    /// The word-buffered [`BlockRng`] must serve exactly the inner
    /// stream's draws in order, across every distribution the move pass
    /// uses and any interleaving — the invariant that makes wrapping
    /// the chunk streams trajectory-preserving.
    #[test]
    fn block_rng_matches_direct_draws(seed in 0u64..10_000, picks in proptest::collection::vec(0u8..4, 1..200)) {
        let mut direct = rng(seed);
        let mut blocked = BlockRng::new(rng(seed));
        for pick in picks {
            match pick {
                0 => prop_assert_eq!(direct.gen::<f64>().to_bits(), blocked.gen::<f64>().to_bits()),
                1 => prop_assert_eq!(direct.gen_bool(0.37), blocked.gen_bool(0.37)),
                2 => prop_assert_eq!(direct.gen_range(0..97u32), blocked.gen_range(0..97u32)),
                _ => prop_assert_eq!(direct.next_u64(), blocked.next_u64()),
            }
        }
    }

    #[test]
    fn static_step_batch_is_motionless_with_zero_drift(seed in 0u64..1000, n in 1usize..40) {
        let model = Static::new(50.0, Placement::Uniform).unwrap();
        let mut r = rng(seed);
        let states: Vec<_> = (0..n).map(|_| model.init_stationary(&mut r)).collect();
        let mut positions: Vec<Point> = states.iter().map(|s| model.position(s)).collect();
        let before = positions.clone();
        let mut batch = model.batch_from_states(states);
        for _ in 0..10 {
            let drift = model.step_batch(&mut batch, &mut positions, &mut r, |_, _| {
                panic!("static agents emit no events")
            });
            prop_assert_eq!(drift, 0.0);
        }
        prop_assert_eq!(positions, before);
    }
}

/// Forwards every required `Mobility` method (including the fused
/// `step_from`) to the wrapped model but deliberately does **not**
/// override `step_batch_chunked` — so calling it resolves to the
/// trait's sequential reference default. The chunked-lockstep tests
/// compare real overrides against this oracle.
#[derive(Clone, Debug)]
struct RefModel<M>(M);

impl<M: Mobility> Mobility for RefModel<M> {
    type State = M::State;
    type Batch = M::Batch;

    fn region(&self) -> fastflood_geom::Rect {
        self.0.region()
    }
    fn speed(&self) -> f64 {
        self.0.speed()
    }
    fn init_stationary<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Self::State {
        self.0.init_stationary(rng)
    }
    fn init_at<R: rand::Rng + ?Sized>(&self, pos: Point, rng: &mut R) -> Self::State {
        self.0.init_at(pos, rng)
    }
    fn position(&self, state: &Self::State) -> Point {
        self.0.position(state)
    }
    fn step<R: rand::Rng + ?Sized>(
        &self,
        state: &mut Self::State,
        rng: &mut R,
    ) -> fastflood_mobility::StepEvents {
        self.0.step(state, rng)
    }
    fn step_from<R: rand::Rng + ?Sized>(
        &self,
        state: &mut Self::State,
        current: Point,
        rng: &mut R,
    ) -> (Point, fastflood_mobility::StepEvents) {
        self.0.step_from(state, current, rng)
    }
    fn batch_from_states(&self, states: Vec<Self::State>) -> Self::Batch {
        self.0.batch_from_states(states)
    }
    fn batch_state(&self, batch: &Self::Batch, agent: usize) -> Self::State {
        self.0.batch_state(batch, agent)
    }
    fn batch_set_state(&self, batch: &mut Self::Batch, agent: usize, state: Self::State) {
        self.0.batch_set_state(batch, agent, state)
    }
    fn step_batch<R: rand::Rng + ?Sized, F: FnMut(usize, fastflood_mobility::StepEvents)>(
        &self,
        batch: &mut Self::Batch,
        positions: &mut [Point],
        rng: &mut R,
        on_events: F,
    ) -> f64 {
        self.0.step_batch(batch, positions, rng, on_events)
    }
}

type StepLog = Vec<(
    Vec<(u64, u64)>,
    Vec<(usize, fastflood_mobility::StepEvents)>,
    u64,
)>;

/// Runs `steps` chunked moves on `pool` and logs per-step `(position
/// bits, events, drift bits)` — the canonical trace the chunked
/// lockstep tests compare bitwise.
fn chunked_trace<M: Mobility>(
    model: &M,
    states: &[M::State],
    n: usize,
    steps: usize,
    seed: u64,
    pool: &WorkerPool,
) -> StepLog {
    let mut positions: Vec<Point> = states.iter().map(|s| model.position(s)).collect();
    let mut batch = model.batch_from_states(states.to_vec());
    let mut chunks: Vec<ChunkCtx<rand::rngs::StdRng>> = (0..move_chunk_count(n))
        .map(|c| {
            let len = MOVE_CHUNK.min(n.saturating_sub(c * MOVE_CHUNK));
            ChunkCtx::new(rng(seed ^ ((c as u64 + 1) << 32)), len)
        })
        .collect();
    let mut log = Vec::with_capacity(steps);
    for _ in 0..steps {
        let mut events = Vec::new();
        let drift =
            model.step_batch_chunked(&mut batch, &mut positions, &mut chunks, pool, |i, ev| {
                events.push((i, ev));
            });
        let bits: Vec<(u64, u64)> = positions
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect();
        log.push((bits, events, drift.to_bits()));
    }
    log
}

/// The chunked move pass must be a pure function of `(states, chunk
/// streams)`: bitwise-identical trajectories, events, and drift across
/// thread counts {1, 2, 8}, and trajectories/events identical to the
/// trait's sequential reference default (drift may be a different —
/// equally sound — bound, so it is only compared across thread counts).
fn assert_chunked_lockstep<M>(model: &M, n: usize, steps: usize, seed: u64)
where
    M: Mobility + Clone + Sync,
{
    let mut init_rng = rng(seed);
    let states: Vec<M::State> = (0..n)
        .map(|_| model.init_stationary(&mut init_rng))
        .collect();
    let reference = {
        let shim = RefModel(model.clone());
        chunked_trace(&shim, &states, n, steps, seed, &WorkerPool::new(1))
    };
    let mut across_threads: Vec<StepLog> = Vec::new();
    for threads in [1usize, 2, 8] {
        let pool = WorkerPool::new(threads);
        let trace = chunked_trace(model, &states, n, steps, seed, &pool);
        for (t, (step, ref_step)) in trace.iter().zip(&reference).enumerate() {
            assert_eq!(
                step.0, ref_step.0,
                "step {t}, {threads} threads: positions diverged from the reference default"
            );
            assert_eq!(
                step.1, ref_step.1,
                "step {t}, {threads} threads: events diverged from the reference default"
            );
        }
        across_threads.push(trace);
    }
    for trace in &across_threads[1..] {
        assert_eq!(
            trace, &across_threads[0],
            "chunked trace must be bitwise identical across thread counts"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mrwp_chunked_matches_reference_and_thread_counts(
        seed in 0u64..500,
        n in 1usize..40,
        pause in 0u32..3,
    ) {
        let model = Mrwp::new(50.0, 1.2).unwrap().with_pause(pause);
        assert_chunked_lockstep(&model, n, 25, seed);
    }

    #[test]
    fn rwp_chunked_matches_reference_and_thread_counts(seed in 0u64..500, n in 1usize..40) {
        let model = Rwp::new(80.0, 2.5).unwrap();
        assert_chunked_lockstep(&model, n, 20, seed);
    }

    #[test]
    fn street_mrwp_chunked_matches_reference_and_thread_counts(seed in 0u64..500, n in 1usize..25) {
        let model = fastflood_mobility::StreetMrwp::new(80.0, 1.5, 8).unwrap();
        assert_chunked_lockstep(&model, n, 20, seed);
    }

    /// Pause-heavy chunked lockstep for the street grid, mirroring the
    /// MRWP one: the AoS fallback path (`step_batch_chunked_aos`) must
    /// stay a pure function of `(states, chunk streams)` while pauses
    /// dominate the step mix.
    #[test]
    fn street_mrwp_pause_heavy_chunked_matches_reference_and_thread_counts(
        seed in 0u64..500,
        n in 1usize..25,
        pause in 4u32..12,
    ) {
        let side = 80.0;
        let model = fastflood_mobility::StreetMrwp::new(side, 0.3 * side, 8)
            .unwrap()
            .with_pause(pause);
        assert_chunked_lockstep(&model, n, 20, seed);
    }

    #[test]
    fn mixture_chunked_matches_reference_and_thread_counts(seed in 0u64..500, n in 1usize..25) {
        let side = 50.0;
        let mix = fastflood_mobility::Mixture::new(
            vec![
                Mrwp::new(side, 0.4).unwrap(),
                Mrwp::new(side, 2.4).unwrap().with_pause(2),
            ],
            vec![0.5, 0.5],
        )
        .unwrap();
        assert_chunked_lockstep(&mix, n, 20, seed);
    }
}

/// The split advance-kernel/boundary-pass `step_batch` at sizes around
/// the chunk geometry: below one chunk, exactly one chunk, and a
/// ragged multi-chunk tail. The sequential pass is chunk-agnostic, but
/// these sizes exercise the kernel's block/tail split (4-lane blocks
/// under the `simd` feature) at every alignment that matters.
#[test]
fn mrwp_batch_lockstep_at_chunk_tail_sizes() {
    for (i, n) in [MOVE_CHUNK - 1, MOVE_CHUNK, MOVE_CHUNK + 613]
        .into_iter()
        .enumerate()
    {
        let model = Mrwp::new(60.0, 0.8).unwrap();
        assert_batch_lockstep(&model, n, 6, 1000 + i as u64);
        let paused = Mrwp::new(60.0, 6.0).unwrap().with_pause(3);
        assert_batch_lockstep(&paused, n, 6, 2000 + i as u64);
    }
}

/// Multi-chunk population (several `MOVE_CHUNK` chunks): the property
/// above at a size where chunk boundaries, per-chunk streams, and real
/// cross-thread distribution are all exercised.
#[test]
fn mrwp_chunked_lockstep_across_many_chunks() {
    let n = 2 * MOVE_CHUNK + 613; // three chunks, ragged tail
    let model = Mrwp::new(60.0, 0.8).unwrap();
    assert_chunked_lockstep(&model, n, 12, 42);
    let paused = Mrwp::new(60.0, 0.8).unwrap().with_pause(2);
    assert_chunked_lockstep(&paused, n, 12, 43);
}

/// The chunked pass measures drift per chunk and reduces by max; the
/// result must still soundly bound every agent's displacement and never
/// exceed the model speed.
#[test]
fn mrwp_chunked_drift_is_sound() {
    let n = MOVE_CHUNK + 71;
    let model = Mrwp::new(40.0, 1.5).unwrap().with_pause(3);
    let mut init_rng = rng(7);
    let states: Vec<_> = (0..n)
        .map(|_| model.init_stationary(&mut init_rng))
        .collect();
    let mut positions: Vec<Point> = states.iter().map(|s| model.position(s)).collect();
    let mut batch = model.batch_from_states(states);
    let mut chunks: Vec<ChunkCtx<rand::rngs::StdRng>> = (0..move_chunk_count(n))
        .map(|c| ChunkCtx::new(rng(100 + c as u64), MOVE_CHUNK))
        .collect();
    let pool = WorkerPool::new(4);
    for step in 0..200 {
        let before = positions.clone();
        let drift =
            model.step_batch_chunked(&mut batch, &mut positions, &mut chunks, &pool, |_, _| {});
        assert!(drift <= model.speed() + 1e-9, "step {step}: drift {drift}");
        let max_disp = before
            .iter()
            .zip(&positions)
            .map(|(a, b)| a.euclid(*b))
            .fold(0.0f64, f64::max);
        assert!(
            drift + 1e-12 >= max_disp,
            "step {step}: drift {drift} under-counts displacement {max_disp}"
        );
    }
}

/// With way-point pauses, steps where *every* agent happens to pause
/// must report a measured drift strictly below the speed bound — the
/// slack the engine's deferred re-binning window gains over the
/// worst-case `speed()` accrual.
#[test]
fn mrwp_paused_steps_measure_drift_below_speed() {
    let model = Mrwp::new(30.0, 2.0).unwrap().with_pause(8);
    let mut r = rng(11);
    let n = 3;
    let states: Vec<_> = (0..n).map(|_| model.init_stationary(&mut r)).collect();
    let mut positions: Vec<Point> = states.iter().map(|s| model.position(s)).collect();
    let mut batch = model.batch_from_states(states);
    let mut below = 0u32;
    let mut exact = 0u32;
    for _ in 0..400 {
        let drift = model.step_batch(&mut batch, &mut positions, &mut r, |_, _| {});
        assert!(drift <= model.speed() + 1e-9);
        if drift < model.speed() - 1e-9 {
            below += 1;
        } else {
            exact += 1;
        }
    }
    assert!(
        below > 0,
        "some all-paused steps must measure drift < speed"
    );
    assert!(exact > 0, "traveling steps still measure full-speed drift");
}
