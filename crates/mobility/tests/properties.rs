//! Property tests for the mobility models.

use fastflood_geom::Point;
use fastflood_mobility::{distributions, DiskWalk, Mobility, Mrwp, Placement, Rwp, Static};
use proptest::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mrwp_agents_confined_and_speed_exact(
        side in 10.0f64..500.0,
        speed_frac in 0.0f64..0.2,
        seed in 0u64..1000,
        steps in 1usize..60,
    ) {
        let speed = speed_frac * side;
        let model = Mrwp::new(side, speed).unwrap();
        let mut r = rng(seed);
        let mut st = model.init_stationary(&mut r);
        let region = model.region();
        for _ in 0..steps {
            let before = model.position(&st);
            let ev = model.step(&mut st, &mut r);
            let after = model.position(&st);
            prop_assert!(region.contains(after), "escaped region: {after}");
            // L1 displacement never exceeds the speed budget
            prop_assert!(before.manhattan(after) <= speed + 1e-9);
            if ev.arrivals == 0 && speed > 0.0 {
                prop_assert!((before.manhattan(after) - speed).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn mrwp_turn_count_at_most_one_per_trip(
        side in 20.0f64..200.0,
        seed in 0u64..500,
    ) {
        let model = Mrwp::new(side, side / 10.0).unwrap();
        let mut r = rng(seed);
        let mut st = model.init_stationary(&mut r);
        for _ in 0..50 {
            let ev = model.step(&mut st, &mut r);
            // turns <= arrivals + 1 (each trip has at most one corner, and
            // at most one unfinished trip is in flight)
            prop_assert!(ev.turns <= ev.arrivals + 1, "{ev:?}");
        }
    }

    #[test]
    fn rwp_euclid_displacement_bounded(
        side in 10.0f64..300.0,
        speed_frac in 0.0f64..0.3,
        seed in 0u64..500,
    ) {
        let speed = speed_frac * side;
        let model = Rwp::new(side, speed).unwrap();
        let mut r = rng(seed);
        let mut st = model.init_stationary(&mut r);
        for _ in 0..30 {
            let before = model.position(&st);
            model.step(&mut st, &mut r);
            let after = model.position(&st);
            prop_assert!(model.region().contains(after));
            prop_assert!(before.euclid(after) <= speed + 1e-9);
        }
    }

    #[test]
    fn disk_walk_trips_bounded_by_walk_radius(
        side in 50.0f64..300.0,
        rho_frac in 0.01f64..0.3,
        seed in 0u64..500,
    ) {
        let rho = rho_frac * side;
        let model = DiskWalk::new(side, rho / 5.0, rho).unwrap();
        let mut r = rng(seed);
        let mut st = model.init_stationary(&mut r);
        let mut prev = model.position(&st);
        for _ in 0..30 {
            model.step(&mut st, &mut r);
            let cur = model.position(&st);
            prop_assert!(model.region().contains(cur));
            // between consecutive steps the agent cannot outrun its speed
            prop_assert!(prev.euclid(cur) <= rho / 5.0 + 1e-9);
            prev = cur;
        }
    }

    #[test]
    fn static_agents_never_move(side in 1.0f64..100.0, seed in 0u64..100) {
        let model = Static::new(side, Placement::Uniform).unwrap();
        let mut r = rng(seed);
        let mut st = model.init_stationary(&mut r);
        let p = model.position(&st);
        for _ in 0..5 {
            model.step(&mut st, &mut r);
            prop_assert_eq!(model.position(&st), p);
        }
    }

    #[test]
    fn spatial_density_nonnegative_inside(
        side in 1.0f64..1000.0,
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
    ) {
        let d = distributions::spatial_density(side, fx * side, fy * side);
        prop_assert!(d >= -1e-15);
        prop_assert!(d <= distributions::spatial_max_density(side) + 1e-15);
    }

    #[test]
    fn marginal_cdf_monotone(side in 1.0f64..500.0, a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let c_lo = distributions::spatial_marginal_cdf(side, lo * side);
        let c_hi = distributions::spatial_marginal_cdf(side, hi * side);
        prop_assert!(c_lo <= c_hi + 1e-12);
        prop_assert!((0.0..=1.0).contains(&c_lo));
    }

    #[test]
    fn destination_masses_always_total_one(
        side in 1.0f64..100.0,
        fx in 0.001f64..0.999,
        fy in 0.001f64..0.999,
    ) {
        let pos = Point::new(fx * side, fy * side);
        let quadrants: f64 = distributions::Quadrant::ALL
            .iter()
            .map(|&q| distributions::quadrant_probability(side, pos, q))
            .sum();
        let cross = distributions::cross_probability(side, pos);
        prop_assert!((quadrants + cross - 1.0).abs() < 1e-9);
        prop_assert!((cross - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rect_mass_monotone_under_inclusion(
        side in 1.0f64..100.0,
        x0 in 0.0f64..0.4,
        y0 in 0.0f64..0.4,
        w in 0.05f64..0.3,
        h in 0.05f64..0.3,
    ) {
        use fastflood_geom::Rect;
        let inner = Rect::new(
            Point::new(x0 * side, y0 * side),
            Point::new((x0 + w) * side, (y0 + h) * side),
        )
        .unwrap();
        let outer = Rect::new(
            Point::new(0.0, 0.0),
            Point::new((x0 + w + 0.1) * side, (y0 + h + 0.1) * side),
        )
        .unwrap();
        let mi = distributions::rect_mass(side, &inner);
        let mo = distributions::rect_mass(side, &outer);
        prop_assert!(mi >= -1e-12);
        prop_assert!(mo + 1e-12 >= mi, "inclusion violated: {mi} > {mo}");
        prop_assert!(mo <= 1.0 + 1e-12);
    }
}
