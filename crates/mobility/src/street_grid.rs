//! Street-grid MRWP: the urban variant with travel constrained to a
//! Manhattan street grid.
//!
//! The MRWP model is motivated by "agents traveling over an urban zone"
//! (§1, citing \[13\], which studies *Manhattan-path-based* random
//! way-point models on street grids). This model makes the streets
//! explicit: the square is divided into `blocks × blocks` city blocks,
//! way-points are street **intersections**, and every trip follows one of
//! the two Manhattan L-paths between intersections — whose legs, by
//! construction, run along streets. As `blocks → ∞` the model converges
//! to the continuous [`Mrwp`](crate::Mrwp).

use crate::distributions::sample_trip_length_biased;
use crate::model::{step_batch_chunked_aos, step_batch_sequential, ChunkCtx};
use crate::snapshot::{ByteReader, ByteWriter, SnapshotState};
use crate::{Mobility, MobilityError, StepEvents};
use fastflood_geom::{Axis, LPath, Point, Rect};
use fastflood_parallel::WorkerPool;
use rand::Rng;

/// MRWP constrained to a street grid: way-points are the intersections of
/// a `(blocks+1) × (blocks+1)` street grid over `[0, side]²`.
///
/// # Examples
///
/// ```
/// use fastflood_mobility::{Mobility, StreetMrwp};
/// use rand::SeedableRng;
///
/// let city = StreetMrwp::new(100.0, 1.0, 10)?; // 10 blocks per side
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let mut st = city.init_stationary(&mut rng);
/// for _ in 0..50 {
///     city.step(&mut st, &mut rng);
///     let p = city.position(&st);
///     // the agent is always on a street (x or y on the grid)
///     assert!(city.on_street(p, 1e-9));
/// }
/// # Ok::<(), fastflood_mobility::MobilityError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StreetMrwp {
    side: f64,
    speed: f64,
    blocks: usize,
    /// Whole time steps spent paused at each intersection way-point
    /// (0 = free-flowing traffic).
    pause: u32,
}

/// Trajectory state of a street-grid agent (an L-path between
/// intersections plus arc progress).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StreetMrwpState {
    path: LPath,
    s: f64,
    /// Remaining pause steps at the current way-point (0 = traveling).
    pause_left: u32,
}

impl StreetMrwpState {
    /// The destination intersection of the current trip.
    pub fn dest(&self) -> Point {
        self.path.dest()
    }

    /// Whether the agent is currently paused at an intersection.
    pub fn is_paused(&self) -> bool {
        self.pause_left > 0
    }
}

impl SnapshotState for StreetMrwpState {
    const STATE_TAG: u32 = u32::from_le_bytes(*b"STRT");

    /// Layout: path (start, dest, first_axis), `s`, `pause_left`; the
    /// L-path's derived geometry is rebuilt exactly on read.
    fn write_state(&self, w: &mut ByteWriter) {
        w.put_point(self.path.start());
        w.put_point(self.path.dest());
        w.put_axis(self.path.first_axis());
        w.put_f64(self.s);
        w.put_u32(self.pause_left);
    }

    fn read_state(r: &mut ByteReader<'_>) -> Option<StreetMrwpState> {
        let start = r.get_point()?;
        let dest = r.get_point()?;
        let axis = r.get_axis()?;
        Some(StreetMrwpState {
            path: LPath::new(start, dest, axis),
            s: r.get_f64()?,
            pause_left: r.get_u32()?,
        })
    }
}

impl StreetMrwp {
    /// Creates the model with `blocks` city blocks per side (so streets
    /// have spacing `side/blocks`).
    ///
    /// # Errors
    ///
    /// * [`MobilityError::BadSide`] / [`MobilityError::BadSpeed`] as for
    ///   [`crate::Mrwp::new`];
    /// * [`MobilityError::BadRadius`] when `blocks == 0` (no streets).
    pub fn new(side: f64, speed: f64, blocks: usize) -> Result<StreetMrwp, MobilityError> {
        if side <= 0.0 || !side.is_finite() {
            return Err(MobilityError::BadSide(side));
        }
        if speed < 0.0 || !speed.is_finite() {
            return Err(MobilityError::BadSpeed(speed));
        }
        if blocks == 0 {
            return Err(MobilityError::BadRadius(0.0));
        }
        Ok(StreetMrwp {
            side,
            speed,
            blocks,
            pause: 0,
        })
    }

    /// Returns a copy that pauses `steps` whole time steps at every
    /// way-point intersection before choosing the next trip (the urban
    /// red-light/stop-sign analogue of [`crate::Mrwp::with_pause`];
    /// `steps = 0` restores the free-flowing default). During a pause the
    /// agent does not move or turn; leftover budget in the arrival step
    /// is forfeited.
    pub fn with_pause(mut self, steps: u32) -> StreetMrwp {
        self.pause = steps;
        self
    }

    /// Pause duration at each way-point intersection, in whole steps.
    #[inline]
    pub fn pause(&self) -> u32 {
        self.pause
    }

    /// Side length `L` of the region.
    #[inline]
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Number of city blocks per side.
    #[inline]
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Street spacing (block edge length).
    #[inline]
    pub fn block_len(&self) -> f64 {
        self.side / self.blocks as f64
    }

    /// Snaps a point to the nearest street intersection.
    pub fn snap_to_intersection(&self, p: Point) -> Point {
        let g = self.block_len();
        let ix = (p.x / g).round().clamp(0.0, self.blocks as f64);
        let iy = (p.y / g).round().clamp(0.0, self.blocks as f64);
        Point::new(ix * g, iy * g)
    }

    /// Whether `p` lies on a street (either coordinate within `tol` of a
    /// multiple of the street spacing).
    pub fn on_street(&self, p: Point, tol: f64) -> bool {
        let g = self.block_len();
        let near = |v: f64| {
            let frac = (v / g).round() * g;
            (v - frac).abs() <= tol
        };
        near(p.x) || near(p.y)
    }

    fn fresh_trip<R: Rng + ?Sized>(&self, from: Point, rng: &mut R) -> LPath {
        let k = self.blocks + 1;
        let g = self.block_len();
        let dest = Point::new(
            rng.gen_range(0..k) as f64 * g,
            rng.gen_range(0..k) as f64 * g,
        );
        let axis = if rng.gen_bool(0.5) { Axis::Y } else { Axis::X };
        LPath::new(from, dest, axis)
    }
}

impl Mobility for StreetMrwp {
    type State = StreetMrwpState;
    /// AoS batch: the street-grid variant is an experiment-scale model,
    /// stepped through the fused scalar path.
    type Batch = Vec<StreetMrwpState>;

    fn region(&self) -> Rect {
        Rect::square(self.side).expect("validated side")
    }

    fn speed(&self) -> f64 {
        self.speed
    }

    fn init_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> StreetMrwpState {
        if self.pause == 0 || self.speed == 0.0 {
            // Length-biased intersection pairs: draw a continuous
            // length-biased pair (the limit distribution) and snap both
            // endpoints; reject degenerate snaps. Exact in the blocks → ∞
            // limit and an excellent approximation at city scale
            // (validated statistically in tests).
            loop {
                let (w, d) = sample_trip_length_biased(self.side, rng);
                let w = self.snap_to_intersection(w);
                let d = self.snap_to_intersection(d);
                if w == d {
                    continue;
                }
                let axis = if rng.gen_bool(0.5) { Axis::Y } else { Axis::X };
                let path = LPath::new(w, d, axis);
                let s = rng.gen::<f64>() * path.len();
                return StreetMrwpState {
                    path,
                    s,
                    pause_left: 0,
                };
            }
        }
        // With pauses, a renewal cycle lasts len/v + pause steps; sample
        // snapped intersection pairs duration-biased, then place the agent
        // uniformly in time within the cycle (traveling or paused at the
        // destination) — the street-grid analogue of Mrwp's pause sampler.
        let l = self.side;
        let max_duration = 2.0 * l / self.speed + self.pause as f64;
        loop {
            let w =
                self.snap_to_intersection(Point::new(l * rng.gen::<f64>(), l * rng.gen::<f64>()));
            let d =
                self.snap_to_intersection(Point::new(l * rng.gen::<f64>(), l * rng.gen::<f64>()));
            if w == d {
                continue;
            }
            let len = w.manhattan(d);
            let duration = len / self.speed + self.pause as f64;
            if rng.gen::<f64>() * max_duration >= duration {
                continue;
            }
            if rng.gen::<f64>() * duration < self.pause as f64 {
                // paused at the destination, uniformly into the pause
                return StreetMrwpState {
                    path: LPath::new(d, d, Axis::X),
                    s: 0.0,
                    pause_left: rng.gen_range(1..=self.pause),
                };
            }
            let axis = if rng.gen_bool(0.5) { Axis::Y } else { Axis::X };
            let path = LPath::new(w, d, axis);
            let s = rng.gen::<f64>() * path.len();
            return StreetMrwpState {
                path,
                s,
                pause_left: 0,
            };
        }
    }

    fn init_at<R: Rng + ?Sized>(&self, pos: Point, rng: &mut R) -> StreetMrwpState {
        assert!(
            self.region().contains(pos),
            "initial position {pos} outside the region"
        );
        let from = self.snap_to_intersection(pos);
        StreetMrwpState {
            path: self.fresh_trip(from, rng),
            s: 0.0,
            pause_left: 0,
        }
    }

    fn position(&self, state: &StreetMrwpState) -> Point {
        state.path.point_at(state.s)
    }

    fn step<R: Rng + ?Sized>(&self, state: &mut StreetMrwpState, rng: &mut R) -> StepEvents {
        if state.pause_left > 0 {
            state.pause_left -= 1;
            if state.pause_left == 0 {
                // the pause ends at this step's boundary; travel resumes
                // next step on a fresh trip
                let from = state.path.dest();
                state.path = self.fresh_trip(from, rng);
                state.s = 0.0;
            }
            return StepEvents::default();
        }
        let mut budget = self.speed;
        let mut events = StepEvents::default();
        let mut guard = 0;
        loop {
            let remaining = state.path.remaining(state.s);
            if budget < remaining {
                let before = state.s;
                state.s += budget;
                if let Some(t) = state.path.turn_at() {
                    if before < t && state.s >= t {
                        events.turns += 1;
                    }
                }
                break;
            }
            if let Some(t) = state.path.turn_at() {
                if state.s < t {
                    events.turns += 1;
                }
            }
            budget -= remaining;
            events.arrivals += 1;
            let from = state.path.dest();
            if self.pause > 0 {
                // hold position at the intersection for `pause` whole
                // steps; leftover budget in the arrival step is forfeited
                state.path = LPath::new(from, from, Axis::X);
                state.s = 0.0;
                state.pause_left = self.pause;
                break;
            }
            state.path = self.fresh_trip(from, rng);
            state.s = 0.0;
            guard += 1;
            if guard > 10_000 {
                break;
            }
        }
        events
    }

    fn batch_from_states(&self, states: Vec<StreetMrwpState>) -> Self::Batch {
        states
    }

    fn batch_state(&self, batch: &Self::Batch, agent: usize) -> StreetMrwpState {
        batch[agent].clone()
    }

    fn batch_set_state(&self, batch: &mut Self::Batch, agent: usize, state: StreetMrwpState) {
        batch[agent] = state;
    }

    fn step_batch<R: Rng + ?Sized, F: FnMut(usize, StepEvents)>(
        &self,
        batch: &mut Self::Batch,
        positions: &mut [Point],
        rng: &mut R,
        on_events: F,
    ) -> f64 {
        step_batch_sequential(self, batch, positions, rng, on_events)
    }

    fn step_batch_chunked<R: Rng + Send, F: FnMut(usize, StepEvents)>(
        &self,
        batch: &mut Self::Batch,
        positions: &mut [Point],
        chunks: &mut [ChunkCtx<R>],
        pool: &WorkerPool,
        on_events: F,
    ) -> f64 {
        step_batch_chunked_aos(self, batch, positions, chunks, pool, on_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const L: f64 = 100.0;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn construction_validates() {
        assert!(StreetMrwp::new(0.0, 1.0, 10).is_err());
        assert!(StreetMrwp::new(L, -1.0, 10).is_err());
        assert!(StreetMrwp::new(L, 1.0, 0).is_err());
        let m = StreetMrwp::new(L, 1.0, 20).unwrap();
        assert_eq!(m.block_len(), 5.0);
        assert_eq!(m.blocks(), 20);
    }

    #[test]
    fn snapping_hits_grid() {
        let m = StreetMrwp::new(L, 1.0, 10).unwrap();
        assert_eq!(
            m.snap_to_intersection(Point::new(12.0, 38.0)),
            Point::new(10.0, 40.0)
        );
        assert_eq!(
            m.snap_to_intersection(Point::new(0.0, 0.0)),
            Point::new(0.0, 0.0)
        );
        assert_eq!(
            m.snap_to_intersection(Point::new(99.9, 99.9)),
            Point::new(100.0, 100.0)
        );
        // snapping is idempotent
        let p = m.snap_to_intersection(Point::new(33.3, 77.7));
        assert_eq!(m.snap_to_intersection(p), p);
    }

    #[test]
    fn agents_stay_on_streets_forever() {
        let m = StreetMrwp::new(L, 3.0, 8).unwrap();
        let mut r = rng(1);
        let mut st = m.init_stationary(&mut r);
        for _ in 0..500 {
            m.step(&mut st, &mut r);
            let p = m.position(&st);
            assert!(m.region().contains(p));
            assert!(m.on_street(p, 1e-9), "agent left the streets at {p}");
        }
    }

    #[test]
    fn waypoints_are_intersections() {
        let m = StreetMrwp::new(L, 2.0, 5).unwrap();
        let g = m.block_len();
        let mut r = rng(2);
        let mut st = m.init_stationary(&mut r);
        for _ in 0..300 {
            m.step(&mut st, &mut r);
            let d = st.dest();
            assert!((d.x / g).fract().abs() < 1e-9);
            assert!((d.y / g).fract().abs() < 1e-9);
        }
    }

    #[test]
    fn speed_exact_between_arrivals() {
        let m = StreetMrwp::new(L, 1.5, 10).unwrap();
        let mut r = rng(3);
        let mut st = m.init_stationary(&mut r);
        for _ in 0..200 {
            let before = m.position(&st);
            let ev = m.step(&mut st, &mut r);
            let after = m.position(&st);
            if ev.arrivals == 0 {
                assert!((before.manhattan(after) - 1.5).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn distribution_is_center_heavy_like_mrwp() {
        // the street model inherits the Fig. 1 shape: corners sparse
        let m = StreetMrwp::new(L, 1.0, 20).unwrap();
        let mut r = rng(4);
        let n = 20_000;
        let mut corner = 0usize;
        let mut center = 0usize;
        for _ in 0..n {
            let p = m.position(&m.init_stationary(&mut r));
            if p.x < L / 4.0 && p.y < L / 4.0 {
                corner += 1;
            }
            if (p.x - L / 2.0).abs() < L / 8.0 && (p.y - L / 2.0).abs() < L / 8.0 {
                center += 1;
            }
        }
        // equal-area regions: center box must clearly dominate the corner
        assert!(
            center as f64 > 1.5 * corner as f64,
            "center {center} vs corner {corner}"
        );
    }

    #[test]
    fn init_at_snaps_and_validates() {
        let m = StreetMrwp::new(L, 1.0, 10).unwrap();
        let mut r = rng(5);
        let st = m.init_at(Point::new(12.0, 47.0), &mut r);
        assert_eq!(m.position(&st), Point::new(10.0, 50.0));
    }

    #[test]
    #[should_panic(expected = "outside the region")]
    fn init_at_rejects_outside() {
        let m = StreetMrwp::new(L, 1.0, 10).unwrap();
        let mut r = rng(6);
        m.init_at(Point::new(-1.0, 0.0), &mut r);
    }

    #[test]
    fn pauses_hold_position_at_intersections() {
        let m = StreetMrwp::new(L, 8.0, 5).unwrap().with_pause(3);
        assert_eq!(m.pause(), 3);
        let mut r = rng(8);
        let mut st = m.init_at(Point::new(40.0, 40.0), &mut r);
        let mut pause_runs = 0usize;
        let mut held_steps = 0usize;
        for _ in 0..400 {
            let before = m.position(&st);
            let was_paused = st.is_paused();
            let ev = m.step(&mut st, &mut r);
            let after = m.position(&st);
            assert!(m.on_street(after, 1e-9));
            if was_paused {
                assert_eq!(before, after, "paused agent moved");
                assert_eq!(ev, StepEvents::default());
                held_steps += 1;
            }
            if st.is_paused() && !was_paused {
                // just arrived: the agent is parked exactly on an
                // intersection with the full pause ahead of it
                assert_eq!(m.snap_to_intersection(after), after);
                assert!(ev.arrivals >= 1);
                pause_runs += 1;
            }
        }
        assert!(pause_runs >= 5, "only {pause_runs} pauses in 400 steps");
        // every completed pause holds for the full 3 steps (the last run
        // may be cut off by the end of the loop)
        assert!(held_steps >= 3 * (pause_runs - 1) && held_steps <= 3 * pause_runs);
    }

    #[test]
    fn paused_stationary_init_resumes_travel() {
        let m = StreetMrwp::new(L, 2.0, 10).unwrap().with_pause(50);
        let mut r = rng(9);
        // with a 50-step pause most cycle time is spent paused
        let mut paused = 0usize;
        for _ in 0..500 {
            let st = m.init_stationary(&mut r);
            if st.is_paused() {
                assert_eq!(m.snap_to_intersection(m.position(&st)), m.position(&st));
                paused += 1;
            }
        }
        assert!(paused > 250, "only {paused}/500 init draws paused");
        // a paused agent eventually travels again
        let mut st = loop {
            let st = m.init_stationary(&mut r);
            if st.is_paused() {
                break st;
            }
        };
        let start = m.position(&st);
        for _ in 0..60 {
            m.step(&mut st, &mut r);
        }
        assert_ne!(m.position(&st), start, "agent never resumed travel");
    }

    #[test]
    fn coarse_grid_still_works() {
        // a 1-block city: all trips run along the border streets
        let m = StreetMrwp::new(L, 5.0, 1).unwrap();
        let mut r = rng(7);
        let mut st = m.init_stationary(&mut r);
        for _ in 0..100 {
            m.step(&mut st, &mut r);
            let p = m.position(&st);
            let on_border = p.x.abs() < 1e-9
                || (p.x - L).abs() < 1e-9
                || p.y.abs() < 1e-9
                || (p.y - L).abs() < 1e-9;
            assert!(on_border, "agent at {p} left the single block's border");
        }
    }
}
