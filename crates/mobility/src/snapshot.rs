//! Byte-exact state serialization for the checkpoint/restore subsystem.
//!
//! Every mobility model implements [`SnapshotState`] for its per-agent
//! state so the flooding engine can freeze a run and later resume it
//! **bitwise-identically** — floats travel as raw IEEE-754 bits
//! ([`f64::to_bits`]), never through text, so `restore(snapshot_at_k)`
//! followed by stepping to `m` replays the exact trajectory of the
//! uninterrupted run. Derived quantities that a model can rebuild
//! deterministically from the serialized fields (e.g. the L-path corner
//! and leg lengths of [`LPath`](fastflood_geom::LPath)) are *not*
//! stored: [`LPath::new`](fastflood_geom::LPath::new) is a pure
//! function of `(start, dest, first_axis)`, so rebuilding is exact.
//!
//! The encoding is deliberately primitive — fixed-width little-endian
//! words with no self-description — because the snapshot container
//! (`fastflood-core`'s checkpoint format) owns versioning, checksums,
//! and section framing. [`SnapshotState::STATE_TAG`] feeds the
//! container's model fingerprint so a snapshot of one model is never
//! silently decoded as another.

use fastflood_geom::{Axis, Point};

/// Little-endian byte sink for snapshot payloads.
///
/// # Examples
///
/// ```
/// use fastflood_mobility::snapshot::{ByteReader, ByteWriter};
///
/// let mut w = ByteWriter::new();
/// w.put_u32(7);
/// w.put_f64(0.25);
/// let bytes = w.into_bytes();
/// let mut r = ByteReader::new(&bytes);
/// assert_eq!(r.get_u32(), Some(7));
/// assert_eq!(r.get_f64(), Some(0.25));
/// assert!(r.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Creates a writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> ByteWriter {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bits (bitwise-exact, NaN
    /// payloads and signed zeros included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a [`Point`] as two raw `f64`s.
    pub fn put_point(&mut self, p: Point) {
        self.put_f64(p.x);
        self.put_f64(p.y);
    }

    /// Appends an [`Axis`] as one byte (`X` = 0, `Y` = 1).
    pub fn put_axis(&mut self, a: Axis) {
        self.put_u8(match a {
            Axis::X => 0,
            Axis::Y => 1,
        });
    }

    /// Appends raw bytes verbatim (length is *not* prefixed; the caller
    /// owns framing).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed (`u64` LE) byte block.
    pub fn put_block(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.put_bytes(bytes);
    }
}

/// Cursor over snapshot payload bytes; every getter returns `None` on
/// underrun instead of panicking, so truncated snapshots surface as
/// decode errors, never aborts.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> ByteReader<'a> {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether the reader is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes, or `None` if fewer remain.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Some(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from raw IEEE-754 bits.
    pub fn get_f64(&mut self) -> Option<f64> {
        self.get_u64().map(f64::from_bits)
    }

    /// Reads a [`Point`] (two raw `f64`s).
    pub fn get_point(&mut self) -> Option<Point> {
        let x = self.get_f64()?;
        let y = self.get_f64()?;
        Some(Point::new(x, y))
    }

    /// Reads an [`Axis`]; `None` on underrun *or* an invalid code.
    pub fn get_axis(&mut self) -> Option<Axis> {
        match self.get_u8()? {
            0 => Some(Axis::X),
            1 => Some(Axis::Y),
            _ => None,
        }
    }

    /// Reads a length-prefixed block written by [`ByteWriter::put_block`].
    pub fn get_block(&mut self) -> Option<&'a [u8]> {
        let len = self.get_u64()?;
        let len = usize::try_from(len).ok()?;
        self.take(len)
    }
}

/// Per-agent mobility state that can round-trip through a checkpoint
/// **bitwise-exactly**: for every reachable state `s`,
/// `read_state(write_state(s)) == Some(s)` with all float fields equal
/// as raw bits, so a restored run's trajectories continue identically.
///
/// Implementations serialize only what cannot be rebuilt; deterministic
/// derived caches (path corners, leg lengths) are recomputed on read.
pub trait SnapshotState: Sized {
    /// Four-byte model tag mixed into the snapshot's model fingerprint,
    /// so a checkpoint of one model is rejected by another at decode
    /// time instead of producing garbage trajectories.
    const STATE_TAG: u32;

    /// Serializes this state into `w` (fixed layout per model).
    fn write_state(&self, w: &mut ByteWriter);

    /// Rebuilds a state written by [`SnapshotState::write_state`];
    /// `None` when the bytes are truncated or encode an invalid state.
    fn read_state(r: &mut ByteReader<'_>) -> Option<Self>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mobility;

    #[test]
    fn writer_reader_roundtrip_primitives() {
        let mut w = ByteWriter::with_capacity(64);
        w.put_u8(9);
        w.put_u32(u32::MAX);
        w.put_u64(0xDEAD_BEEF_0123_4567);
        w.put_f64(-0.0);
        w.put_point(Point::new(1.5, -2.25));
        w.put_axis(Axis::Y);
        w.put_block(b"abc");
        assert!(!w.is_empty());
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8(), Some(9));
        assert_eq!(r.get_u32(), Some(u32::MAX));
        assert_eq!(r.get_u64(), Some(0xDEAD_BEEF_0123_4567));
        // -0.0 must survive as -0.0, not 0.0
        assert_eq!(r.get_f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(r.get_point(), Some(Point::new(1.5, -2.25)));
        assert_eq!(r.get_axis(), Some(Axis::Y));
        assert_eq!(r.get_block(), Some(&b"abc"[..]));
        assert!(r.is_empty());
    }

    #[test]
    fn reader_underrun_returns_none() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.get_u32(), None);
        // a failed read consumes nothing
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.get_u8(), Some(1));
        assert_eq!(r.get_u64(), None);
        assert_eq!(r.take(2), Some(&[2u8, 3u8][..]));
        assert_eq!(r.get_u8(), None);
    }

    #[test]
    fn axis_rejects_bad_code() {
        let mut r = ByteReader::new(&[2]);
        assert_eq!(r.get_axis(), None);
    }

    #[test]
    fn block_rejects_truncation() {
        let mut w = ByteWriter::new();
        w.put_block(b"hello");
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 1);
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_block(), None);
    }

    #[test]
    fn nan_bits_survive_exactly() {
        let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let mut w = ByteWriter::new();
        w.put_f64(weird);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_f64().map(f64::to_bits), Some(weird.to_bits()));
    }

    /// Roundtrips `steps`-aged stationary states of `model` through the
    /// snapshot encoding and checks the restored copy continues the
    /// trajectory identically under a cloned rng stream.
    fn roundtrip_continues<M>(model: M, steps: usize)
    where
        M: crate::Mobility,
        M::State: SnapshotState + PartialEq,
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(41);
        for trial in 0..32 {
            let mut st = model.init_stationary(&mut rng);
            for _ in 0..steps {
                model.step(&mut st, &mut rng);
            }
            let mut w = ByteWriter::new();
            st.write_state(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let mut restored = M::State::read_state(&mut r).expect("valid state bytes");
            assert!(r.is_empty(), "trailing bytes after state read");
            assert!(restored == st, "trial {trial}: state changed in roundtrip");
            // the restored state must continue identically, bit for bit
            let mut ra = rng.clone();
            let mut rb = rng.clone();
            for k in 0..steps.max(4) {
                model.step(&mut st, &mut ra);
                model.step(&mut restored, &mut rb);
                assert_eq!(
                    model.position(&st).x.to_bits(),
                    model.position(&restored).x.to_bits(),
                    "trial {trial}, step {k}: x diverged"
                );
                assert_eq!(
                    model.position(&st).y.to_bits(),
                    model.position(&restored).y.to_bits(),
                    "trial {trial}, step {k}: y diverged"
                );
            }
        }
    }

    #[test]
    fn mrwp_state_roundtrips_bitwise() {
        roundtrip_continues(crate::Mrwp::new(50.0, 1.3).unwrap(), 17);
        roundtrip_continues(crate::Mrwp::new(50.0, 2.0).unwrap().with_pause(3), 9);
    }

    #[test]
    fn rwp_state_roundtrips_bitwise() {
        roundtrip_continues(crate::Rwp::new(50.0, 1.7).unwrap(), 13);
    }

    #[test]
    fn disk_walk_state_roundtrips_bitwise() {
        roundtrip_continues(crate::DiskWalk::new(50.0, 1.1, 6.0).unwrap(), 13);
    }

    #[test]
    fn static_state_roundtrips_bitwise() {
        roundtrip_continues(
            crate::Static::new(50.0, crate::Placement::MrwpStationary).unwrap(),
            3,
        );
    }

    #[test]
    fn street_state_roundtrips_bitwise() {
        roundtrip_continues(crate::StreetMrwp::new(60.0, 2.1, 6).unwrap(), 11);
        roundtrip_continues(
            crate::StreetMrwp::new(60.0, 2.1, 6).unwrap().with_pause(2),
            11,
        );
    }

    #[test]
    fn mixture_state_roundtrips_bitwise() {
        let mix = crate::Mixture::new(
            vec![
                crate::Mrwp::new(40.0, 0.3).unwrap(),
                crate::Mrwp::new(40.0, 1.9).unwrap(),
            ],
            vec![0.6, 0.4],
        )
        .unwrap();
        roundtrip_continues(mix, 15);
    }

    #[test]
    fn state_tags_are_distinct() {
        use crate::{
            DiskWalkState, MixtureState, MrwpState, RwpState, StaticState, StreetMrwpState,
        };
        let tags = [
            MrwpState::STATE_TAG,
            RwpState::STATE_TAG,
            DiskWalkState::STATE_TAG,
            StaticState::STATE_TAG,
            StreetMrwpState::STATE_TAG,
            MixtureState::<MrwpState>::STATE_TAG,
        ];
        for i in 0..tags.len() {
            for j in i + 1..tags.len() {
                assert_ne!(tags[i], tags[j], "tag collision between {i} and {j}");
            }
        }
    }

    #[test]
    fn truncated_state_bytes_rejected() {
        use rand::SeedableRng;
        let model = crate::Mrwp::new(50.0, 1.0).unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let st = model.init_stationary(&mut rng);
        let mut w = ByteWriter::new();
        st.write_state(&mut w);
        let bytes = w.into_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                crate::MrwpState::read_state(&mut r).is_none(),
                "accepted a state truncated to {cut} bytes"
            );
        }
    }
}
