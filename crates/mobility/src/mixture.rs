//! Speed-class mixtures: heterogeneous populations built from several
//! copies of one mobility model.
//!
//! Urban evacuation workloads ("Efficiently Evacuating Lower Manhattan")
//! mix pedestrians, cyclists, and vehicles — same movement law, different
//! speeds. [`Mixture`] models that directly: each agent is assigned a
//! *class* (one of the component models, drawn once at init time from
//! fixed weights) and then moves under that component forever. With all
//! components sharing the region, the stationary distribution of the
//! mixture is the weighted mixture of the components' stationary
//! distributions, so perfect simulation carries over componentwise.

use crate::model::{step_batch_chunked_aos, step_batch_sequential, ChunkCtx};
use crate::snapshot::{ByteReader, ByteWriter, SnapshotState};
use crate::{Mobility, MobilityError, StepEvents};
use fastflood_geom::{Point, Rect};
use fastflood_parallel::WorkerPool;
use rand::Rng;

/// A fixed-weight mixture of same-family mobility models (speed classes).
///
/// Construction validates that every component covers the same region and
/// that the weights are positive and finite; weights are normalized
/// internally. The mixture's [`Mobility::speed`] is the *maximum*
/// component speed, so per-step drift bounds stay sound for every agent.
///
/// # Examples
///
/// ```
/// use fastflood_mobility::{Mixture, Mobility, Mrwp};
/// use rand::SeedableRng;
///
/// // 70% pedestrians (v = 0.1), 30% vehicles (v = 0.8)
/// let mix = Mixture::new(
///     vec![Mrwp::new(100.0, 0.1)?, Mrwp::new(100.0, 0.8)?],
///     vec![0.7, 0.3],
/// )?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let st = mix.init_stationary(&mut rng);
/// assert!(mix.class_of(&st) < 2);
/// assert_eq!(mix.speed(), 0.8);
/// # Ok::<(), fastflood_mobility::MobilityError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mixture<M> {
    models: Vec<M>,
    /// Cumulative normalized weights; `cumulative.last() == 1.0`.
    cumulative: Vec<f64>,
}

/// Per-agent state of a [`Mixture`]: the assigned class index plus the
/// component model's own state.
#[derive(Debug, Clone, PartialEq)]
pub struct MixtureState<S> {
    class: u32,
    inner: S,
}

impl<S: SnapshotState> SnapshotState for MixtureState<S> {
    /// The component tag mixed with a mixture marker, so a mixture
    /// snapshot is never confused with a bare component snapshot (their
    /// per-agent layouts differ by the class prefix).
    const STATE_TAG: u32 = S::STATE_TAG ^ u32::from_le_bytes(*b"MIX!");

    /// Layout: the assigned class, then the component state.
    fn write_state(&self, w: &mut ByteWriter) {
        w.put_u32(self.class);
        self.inner.write_state(w);
    }

    fn read_state(r: &mut ByteReader<'_>) -> Option<MixtureState<S>> {
        Some(MixtureState {
            class: r.get_u32()?,
            inner: S::read_state(r)?,
        })
    }
}

impl<M: Mobility> Mixture<M> {
    /// Builds a mixture from component models and matching weights.
    ///
    /// # Errors
    ///
    /// * [`MobilityError::BadSpeed`] when `models` and `weights` differ in
    ///   length, are empty, or any weight is non-positive or non-finite;
    /// * [`MobilityError::BadSide`] when the components disagree on the
    ///   region.
    pub fn new(models: Vec<M>, weights: Vec<f64>) -> Result<Mixture<M>, MobilityError> {
        if models.is_empty() || models.len() != weights.len() {
            return Err(MobilityError::BadSpeed(weights.len() as f64));
        }
        if weights.iter().any(|&w| !(w.is_finite() && w > 0.0)) {
            return Err(MobilityError::BadSpeed(f64::NAN));
        }
        let region = models[0].region();
        if models.iter().any(|m| m.region() != region) {
            return Err(MobilityError::BadSide(region.width()));
        }
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cumulative: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        // guard against rounding: the last bin must catch every draw
        *cumulative.last_mut().expect("nonempty") = 1.0;
        Ok(Mixture { models, cumulative })
    }

    /// The component models, in class order.
    pub fn models(&self) -> &[M] {
        &self.models
    }

    /// Number of speed classes.
    pub fn classes(&self) -> usize {
        self.models.len()
    }

    /// The class (component index) a state was assigned at init time.
    pub fn class_of(&self, state: &MixtureState<M::State>) -> usize {
        state.class as usize
    }

    fn draw_class<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u = rng.gen::<f64>();
        self.cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.models.len() - 1) as u32
    }
}

impl<M: Mobility + Sync> Mobility for Mixture<M> {
    type State = MixtureState<M::State>;
    /// AoS batch: mixtures are experiment-scale models, stepped through
    /// the fused scalar path.
    type Batch = Vec<MixtureState<M::State>>;

    fn region(&self) -> Rect {
        self.models[0].region()
    }

    /// Maximum component speed — the sound per-step drift bound for the
    /// whole population.
    fn speed(&self) -> f64 {
        self.models.iter().map(|m| m.speed()).fold(0.0, f64::max)
    }

    fn init_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::State {
        let class = self.draw_class(rng);
        let inner = self.models[class as usize].init_stationary(rng);
        MixtureState { class, inner }
    }

    fn init_at<R: Rng + ?Sized>(&self, pos: Point, rng: &mut R) -> Self::State {
        let class = self.draw_class(rng);
        let inner = self.models[class as usize].init_at(pos, rng);
        MixtureState { class, inner }
    }

    fn position(&self, state: &Self::State) -> Point {
        self.models[state.class as usize].position(&state.inner)
    }

    fn step<R: Rng + ?Sized>(&self, state: &mut Self::State, rng: &mut R) -> StepEvents {
        self.models[state.class as usize].step(&mut state.inner, rng)
    }

    fn step_from<R: Rng + ?Sized>(
        &self,
        state: &mut Self::State,
        current: Point,
        rng: &mut R,
    ) -> (Point, StepEvents) {
        self.models[state.class as usize].step_from(&mut state.inner, current, rng)
    }

    fn batch_from_states(&self, states: Vec<Self::State>) -> Self::Batch {
        states
    }

    fn batch_state(&self, batch: &Self::Batch, agent: usize) -> Self::State {
        batch[agent].clone()
    }

    fn batch_set_state(&self, batch: &mut Self::Batch, agent: usize, state: Self::State) {
        batch[agent] = state;
    }

    fn step_batch<R: Rng + ?Sized, F: FnMut(usize, StepEvents)>(
        &self,
        batch: &mut Self::Batch,
        positions: &mut [Point],
        rng: &mut R,
        on_events: F,
    ) -> f64 {
        step_batch_sequential(self, batch, positions, rng, on_events)
    }

    fn step_batch_chunked<R: Rng + Send, F: FnMut(usize, StepEvents)>(
        &self,
        batch: &mut Self::Batch,
        positions: &mut [Point],
        chunks: &mut [ChunkCtx<R>],
        pool: &WorkerPool,
        on_events: F,
    ) -> f64 {
        step_batch_chunked_aos(self, batch, positions, chunks, pool, on_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mrwp;
    use rand::SeedableRng;

    const L: f64 = 100.0;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn two_class() -> Mixture<Mrwp> {
        Mixture::new(
            vec![Mrwp::new(L, 0.2).unwrap(), Mrwp::new(L, 1.6).unwrap()],
            vec![0.75, 0.25],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Mixture::<Mrwp>::new(vec![], vec![]).is_err());
        assert!(Mixture::new(vec![Mrwp::new(L, 1.0).unwrap()], vec![1.0, 2.0]).is_err());
        assert!(Mixture::new(vec![Mrwp::new(L, 1.0).unwrap()], vec![-1.0]).is_err());
        assert!(Mixture::new(vec![Mrwp::new(L, 1.0).unwrap()], vec![f64::NAN]).is_err());
        assert!(Mixture::new(
            vec![Mrwp::new(L, 1.0).unwrap(), Mrwp::new(2.0 * L, 1.0).unwrap()],
            vec![1.0, 1.0],
        )
        .is_err());
        assert_eq!(two_class().classes(), 2);
    }

    #[test]
    fn speed_is_max_component_speed() {
        assert_eq!(two_class().speed(), 1.6);
    }

    #[test]
    fn class_frequencies_match_weights() {
        let mix = two_class();
        let mut r = rng(1);
        let n = 20_000;
        let slow = (0..n)
            .filter(|_| mix.class_of(&mix.init_stationary(&mut r)) == 0)
            .count();
        let frac = slow as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "slow fraction {frac}");
    }

    #[test]
    fn agents_move_at_their_class_speed() {
        let mix = two_class();
        let mut r = rng(2);
        for _ in 0..200 {
            let mut st = mix.init_stationary(&mut r);
            let v = mix.models()[mix.class_of(&st)].speed();
            let before = mix.position(&st);
            let ev = mix.step(&mut st, &mut r);
            let after = mix.position(&st);
            if ev.arrivals == 0 {
                assert!(
                    (before.manhattan(after) - v).abs() < 1e-9,
                    "class speed violated: moved {} at v={v}",
                    before.manhattan(after)
                );
            }
            assert!(before.manhattan(after) <= mix.speed() + 1e-9);
        }
    }

    #[test]
    fn step_from_delegates_to_component() {
        let mix = two_class();
        let mut ra = rng(3);
        let mut st = mix.init_stationary(&mut ra);
        let class = mix.class_of(&st);
        // drive the bare component with a cloned rng stream: the mixture
        // must be a pure pass-through (same positions, same draws)
        let mut rb = ra.clone();
        let mut inner = st.inner.clone();
        for _ in 0..100 {
            let cur = mix.position(&st);
            let (pa, eva) = mix.step_from(&mut st, cur, &mut ra);
            let (pb, evb) = mix.models()[class].step_from(&mut inner, cur, &mut rb);
            assert_eq!(pa, pb);
            assert_eq!(eva, evb);
        }
        assert_eq!(mix.class_of(&st), class, "class never changes");
    }
}
