//! The classical Random Way-Point model (straight-line trips), used as a
//! baseline against MRWP.

use crate::model::{step_batch_chunked_aos, step_batch_sequential, ChunkCtx};
use crate::snapshot::{ByteReader, ByteWriter, SnapshotState};
use crate::{Mobility, MobilityError, StepEvents};
use fastflood_geom::{Point, Rect};
use fastflood_parallel::WorkerPool;
use rand::Rng;

/// Classical Random Way-Point: uniform destinations, *straight-line*
/// travel at constant speed, no pause time.
///
/// The model-comparison experiment (E13) contrasts MRWP with this model:
/// both have center-heavy stationary distributions, but RWP's density
/// vanishes only near the border (not in large corner regions), so it has
/// no Suburb in the paper's sense.
///
/// # Examples
///
/// ```
/// use fastflood_mobility::{Mobility, Rwp};
/// use rand::SeedableRng;
///
/// let model = Rwp::new(100.0, 1.5)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut st = model.init_stationary(&mut rng);
/// let before = model.position(&st);
/// model.step(&mut st, &mut rng);
/// // straight-line motion: Euclidean displacement == speed (no arrival)
/// let moved = before.euclid(model.position(&st));
/// assert!(moved <= 1.5 + 1e-9);
/// # Ok::<(), fastflood_mobility::MobilityError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rwp {
    side: f64,
    speed: f64,
}

/// Trajectory state of one RWP agent: current straight segment and
/// progress along it.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RwpState {
    start: Point,
    dest: Point,
    /// Euclidean distance traveled along the segment.
    s: f64,
}

impl RwpState {
    /// The current trip destination.
    pub fn dest(&self) -> Point {
        self.dest
    }

    /// Distance traveled along the current segment.
    pub fn progress(&self) -> f64 {
        self.s
    }
}

impl SnapshotState for RwpState {
    const STATE_TAG: u32 = u32::from_le_bytes(*b"RWP ");

    /// Layout: segment endpoints then progress — the whole state.
    fn write_state(&self, w: &mut ByteWriter) {
        w.put_point(self.start);
        w.put_point(self.dest);
        w.put_f64(self.s);
    }

    fn read_state(r: &mut ByteReader<'_>) -> Option<RwpState> {
        Some(RwpState {
            start: r.get_point()?,
            dest: r.get_point()?,
            s: r.get_f64()?,
        })
    }
}

impl Rwp {
    /// Creates the model over `[0, side]²` with per-step travel distance
    /// `speed`.
    ///
    /// # Errors
    ///
    /// As [`crate::Mrwp::new`].
    pub fn new(side: f64, speed: f64) -> Result<Rwp, MobilityError> {
        if side <= 0.0 || !side.is_finite() {
            return Err(MobilityError::BadSide(side));
        }
        if speed < 0.0 || !speed.is_finite() {
            return Err(MobilityError::BadSpeed(speed));
        }
        Ok(Rwp { side, speed })
    }

    /// Side length `L` of the region.
    #[inline]
    pub fn side(&self) -> f64 {
        self.side
    }

    fn uniform_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        Point::new(self.side * rng.gen::<f64>(), self.side * rng.gen::<f64>())
    }

    fn position_of(&self, state: &RwpState) -> Point {
        let len = state.start.euclid(state.dest);
        if len == 0.0 {
            return state.start;
        }
        state
            .start
            .lerp(state.dest, (state.s / len).clamp(0.0, 1.0))
    }
}

impl Mobility for Rwp {
    type State = RwpState;
    /// AoS batch: straight-line trips touch the whole state every step,
    /// so there is no hot/cold split to exploit.
    type Batch = Vec<RwpState>;

    fn region(&self) -> Rect {
        Rect::square(self.side).expect("validated side")
    }

    fn speed(&self) -> f64 {
        self.speed
    }

    fn init_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> RwpState {
        // Length-biased segment sampling (Palm construction): accept a
        // uniform pair w.p. ‖w−d‖₂ / (√2·L), then place the agent uniformly
        // along the segment.
        let diag = std::f64::consts::SQRT_2 * self.side;
        loop {
            let w = self.uniform_point(rng);
            let d = self.uniform_point(rng);
            let len = w.euclid(d);
            if rng.gen::<f64>() * diag < len {
                return RwpState {
                    start: w,
                    dest: d,
                    s: rng.gen::<f64>() * len,
                };
            }
        }
    }

    fn init_at<R: Rng + ?Sized>(&self, pos: Point, rng: &mut R) -> RwpState {
        assert!(
            self.region().contains(pos),
            "initial position {pos} outside the region"
        );
        RwpState {
            start: pos,
            dest: self.uniform_point(rng),
            s: 0.0,
        }
    }

    fn position(&self, state: &RwpState) -> Point {
        self.position_of(state)
    }

    fn step<R: Rng + ?Sized>(&self, state: &mut RwpState, rng: &mut R) -> StepEvents {
        let mut budget = self.speed;
        let mut events = StepEvents::default();
        let mut guard = 0;
        loop {
            let len = state.start.euclid(state.dest);
            let remaining = (len - state.s).max(0.0);
            if budget < remaining {
                state.s += budget;
                break;
            }
            budget -= remaining;
            events.arrivals += 1;
            let from = state.dest;
            *state = RwpState {
                start: from,
                dest: self.uniform_point(rng),
                s: 0.0,
            };
            guard += 1;
            if guard > 10_000 {
                break;
            }
        }
        events
    }

    fn batch_from_states(&self, states: Vec<RwpState>) -> Self::Batch {
        states
    }

    fn batch_state(&self, batch: &Self::Batch, agent: usize) -> RwpState {
        batch[agent].clone()
    }

    fn batch_set_state(&self, batch: &mut Self::Batch, agent: usize, state: RwpState) {
        batch[agent] = state;
    }

    fn step_batch<R: Rng + ?Sized, F: FnMut(usize, StepEvents)>(
        &self,
        batch: &mut Self::Batch,
        positions: &mut [Point],
        rng: &mut R,
        on_events: F,
    ) -> f64 {
        step_batch_sequential(self, batch, positions, rng, on_events)
    }

    fn step_batch_chunked<R: Rng + Send, F: FnMut(usize, StepEvents)>(
        &self,
        batch: &mut Self::Batch,
        positions: &mut [Point],
        chunks: &mut [ChunkCtx<R>],
        pool: &WorkerPool,
        on_events: F,
    ) -> f64 {
        step_batch_chunked_aos(self, batch, positions, chunks, pool, on_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const L: f64 = 100.0;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn construction_validates() {
        assert!(Rwp::new(0.0, 1.0).is_err());
        assert!(Rwp::new(10.0, -1.0).is_err());
        assert!(Rwp::new(10.0, 0.0).is_ok());
        assert_eq!(Rwp::new(10.0, 1.0).unwrap().side(), 10.0);
    }

    #[test]
    fn straight_line_displacement_equals_speed() {
        let model = Rwp::new(L, 2.5).unwrap();
        let mut r = rng(1);
        let mut st = model.init_stationary(&mut r);
        for _ in 0..300 {
            let before = model.position(&st);
            let ev = model.step(&mut st, &mut r);
            let after = model.position(&st);
            if ev.arrivals == 0 {
                assert!((before.euclid(after) - 2.5).abs() < 1e-9);
            } else {
                assert!(before.euclid(after) <= 2.5 + 1e-9);
            }
            assert!(model.region().contains(after));
        }
    }

    #[test]
    fn rwp_never_turns_mid_trip() {
        let model = Rwp::new(L, 2.0).unwrap();
        let mut r = rng(2);
        let mut st = model.init_stationary(&mut r);
        for _ in 0..200 {
            let ev = model.step(&mut st, &mut r);
            assert_eq!(ev.turns, 0, "straight-line trips have no corners");
        }
    }

    #[test]
    fn stationary_marginal_is_center_heavy_but_not_mrwp() {
        // RWP stationary density is higher at the center than the border,
        // but unlike MRWP it keeps noticeable corner mass relative to a
        // left/right band comparison; we just verify the center-heavy shape
        let model = Rwp::new(L, 1.0).unwrap();
        let mut r = rng(3);
        let n = 30_000;
        let mut center = 0usize;
        let mut border = 0usize;
        for _ in 0..n {
            let p = model.position(&model.init_stationary(&mut r));
            assert!(model.region().contains(p));
            let band = L / 4.0;
            if (p.x - L / 2.0).abs() < band / 2.0 && (p.y - L / 2.0).abs() < band / 2.0 {
                center += 1;
            }
            if p.x < band / 2.0 || p.x > L - band / 2.0 {
                border += 1;
            }
        }
        // center box (area 1/16 of the square) holds far more than 1/16
        assert!(center as f64 / n as f64 > 1.3 / 16.0);
        assert!(border > 0);
    }

    #[test]
    fn init_at_validates() {
        let model = Rwp::new(L, 1.0).unwrap();
        let mut r = rng(4);
        let st = model.init_at(Point::new(5.0, 5.0), &mut r);
        assert_eq!(model.position(&st), Point::new(5.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "outside the region")]
    fn init_at_rejects_outside() {
        let model = Rwp::new(L, 1.0).unwrap();
        let mut r = rng(5);
        model.init_at(Point::new(L + 1.0, 5.0), &mut r);
    }

    #[test]
    fn zero_speed_is_static() {
        let model = Rwp::new(L, 0.0).unwrap();
        let mut r = rng(6);
        let mut st = model.init_stationary(&mut r);
        let p = model.position(&st);
        for _ in 0..20 {
            model.step(&mut st, &mut r);
            assert_eq!(model.position(&st), p);
        }
    }
}
