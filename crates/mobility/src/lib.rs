//! Mobility models for the `fastflood` MANET simulator.
//!
//! The centerpiece is the **Manhattan Random Way-Point** model ([`Mrwp`],
//! paper §2): each agent repeatedly picks a destination uniformly at random
//! in the square `[0, L]²`, flips a fair coin between the two Manhattan
//! shortest paths (vertical-first `P1` or horizontal-first `P2`), and
//! travels at constant speed `v`. The crate provides:
//!
//! * exact **perfect simulation** of the stationary phase
//!   ([`Mrwp::init_stationary`]) via length-biased trip sampling, so
//!   experiments start in stationarity instead of waiting out a warm-up;
//! * the paper's **closed-form stationary distributions** in
//!   [`distributions`]: the spatial density of Theorem 1, the destination
//!   distribution of Theorem 2 (quadrant densities and the `φ` cross
//!   probabilities of Eqs. 4–5), exact cell masses (Observation 5), and an
//!   exact sampler for the Theorem 1 density;
//! * baseline models for the comparison experiments: classical
//!   [`Rwp`] (straight-line paths), the disk-based random walk
//!   [`DiskWalk`] of the authors' earlier papers, and a [`Static`]
//!   (immobile) model;
//! * [`TurnRecorder`] instrumentation for the Lemma 13 turn-count bound.
//!
//! All models implement the [`Mobility`] trait, which the flooding engine
//! in `fastflood-core` is generic over. The engine's move pass steps the
//! whole population through [`Mobility::step_batch`] — one pass over a
//! model-chosen [`Mobility::Batch`] layout (for [`Mrwp`], the hot/cold
//! split [`MrwpBatch`]) that also *measures* the step's maximum
//! displacement, the drift bound behind the spatial layer's deferred
//! re-binning.
//!
//! # Examples
//!
//! ```
//! use fastflood_mobility::{Mobility, Mrwp};
//! use rand::SeedableRng;
//!
//! let model = Mrwp::new(1000.0, 1.0)?; // L = 1000, v = 1
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut state = model.init_stationary(&mut rng);
//! let before = model.position(&state);
//! model.step(&mut state, &mut rng);
//! let after = model.position(&state);
//! // one step moves exactly v along the Manhattan path
//! assert!((before.manhattan(after) - 1.0).abs() < 1e-9);
//! # Ok::<(), fastflood_mobility::MobilityError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disk_walk;
pub mod distributions;
mod mixture;
mod model;
mod mrwp;
mod rwp;
pub mod snapshot;
mod statik;
mod street_grid;
mod turns;

pub use disk_walk::{DiskWalk, DiskWalkState};
pub use mixture::{Mixture, MixtureState};
pub use model::{
    drain_chunks, move_chunk_count, step_batch_chunked_aos, step_batch_sequential, BlockRng,
    ChunkCtx, Mobility, StepEvents, MOVE_CHUNK, RNG_BLOCK,
};
pub use mrwp::{Mrwp, MrwpBatch, MrwpState};
pub use rwp::{Rwp, RwpState};
pub use snapshot::{ByteReader, ByteWriter, SnapshotState};
pub use statik::{Placement, Static, StaticState};
pub use street_grid::{StreetMrwp, StreetMrwpState};
pub use turns::TurnRecorder;

use std::error::Error;
use std::fmt;

/// Error produced when constructing a mobility model from invalid
/// parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MobilityError {
    /// The region side `L` must be strictly positive and finite.
    BadSide(f64),
    /// The speed `v` must be nonnegative and finite.
    BadSpeed(f64),
    /// A model-specific length parameter (e.g. the disk-walk radius) must
    /// be strictly positive and finite.
    BadRadius(f64),
}

impl fmt::Display for MobilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobilityError::BadSide(v) => {
                write!(f, "region side must be positive and finite, got {v}")
            }
            MobilityError::BadSpeed(v) => {
                write!(f, "speed must be nonnegative and finite, got {v}")
            }
            MobilityError::BadRadius(v) => write!(f, "radius must be positive and finite, got {v}"),
        }
    }
}

impl Error for MobilityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        for e in [
            MobilityError::BadSide(0.0),
            MobilityError::BadSpeed(-1.0),
            MobilityError::BadRadius(f64::NAN),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
