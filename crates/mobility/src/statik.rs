//! The static (immobile) model: the paper's `v = 0` degenerate case.

use crate::distributions::sample_spatial;
use crate::model::ChunkCtx;
use crate::snapshot::{ByteReader, ByteWriter, SnapshotState};
use crate::{Mobility, MobilityError, StepEvents};
use fastflood_geom::{Point, Rect};
use fastflood_parallel::WorkerPool;
use rand::Rng;

/// How a [`Static`] model places its agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Placement {
    /// Uniform over the square.
    #[default]
    Uniform,
    /// The MRWP stationary spatial density of Theorem 1 (center-heavy) —
    /// a *frozen* MRWP snapshot.
    MrwpStationary,
}

/// Immobile agents.
///
/// The paper observes (§5) that with `v = 0` flooding never terminates
/// whenever the Suburb is non-empty: information cannot jump across a
/// disconnected snapshot that never changes. The static model makes that
/// degenerate case directly testable, and doubles as the "snapshot" source
/// for pure connectivity studies.
///
/// # Examples
///
/// ```
/// use fastflood_mobility::{Mobility, Placement, Static};
/// use rand::SeedableRng;
///
/// let model = Static::new(50.0, Placement::MrwpStationary)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let mut st = model.init_stationary(&mut rng);
/// let p = model.position(&st);
/// model.step(&mut st, &mut rng);
/// assert_eq!(model.position(&st), p); // never moves
/// # Ok::<(), fastflood_mobility::MobilityError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Static {
    side: f64,
    placement: Placement,
}

/// State of a static agent: just its position.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StaticState(Point);

impl SnapshotState for StaticState {
    const STATE_TAG: u32 = u32::from_le_bytes(*b"STAT");

    /// Layout: the position — the whole state.
    fn write_state(&self, w: &mut ByteWriter) {
        w.put_point(self.0);
    }

    fn read_state(r: &mut ByteReader<'_>) -> Option<StaticState> {
        r.get_point().map(StaticState)
    }
}

impl Static {
    /// Creates the model over `[0, side]²`.
    ///
    /// # Errors
    ///
    /// [`MobilityError::BadSide`] when `side` is not strictly positive and
    /// finite.
    pub fn new(side: f64, placement: Placement) -> Result<Static, MobilityError> {
        if side <= 0.0 || !side.is_finite() {
            return Err(MobilityError::BadSide(side));
        }
        Ok(Static { side, placement })
    }

    /// Side length `L` of the region.
    #[inline]
    pub fn side(&self) -> f64 {
        self.side
    }

    /// The placement distribution.
    #[inline]
    pub fn placement(&self) -> Placement {
        self.placement
    }
}

impl Mobility for Static {
    type State = StaticState;
    /// AoS batch (the state is just a point; nothing is ever hot).
    type Batch = Vec<StaticState>;

    fn region(&self) -> Rect {
        Rect::square(self.side).expect("validated side")
    }

    fn speed(&self) -> f64 {
        0.0
    }

    fn init_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> StaticState {
        let p = match self.placement {
            Placement::Uniform => {
                Point::new(self.side * rng.gen::<f64>(), self.side * rng.gen::<f64>())
            }
            Placement::MrwpStationary => sample_spatial(self.side, rng),
        };
        StaticState(p)
    }

    fn init_at<R: Rng + ?Sized>(&self, pos: Point, _rng: &mut R) -> StaticState {
        assert!(
            self.region().contains(pos),
            "initial position {pos} outside the region"
        );
        StaticState(pos)
    }

    fn position(&self, state: &StaticState) -> Point {
        state.0
    }

    fn step<R: Rng + ?Sized>(&self, _state: &mut StaticState, _rng: &mut R) -> StepEvents {
        StepEvents::default()
    }

    fn batch_from_states(&self, states: Vec<StaticState>) -> Self::Batch {
        states
    }

    fn batch_state(&self, batch: &Self::Batch, agent: usize) -> StaticState {
        batch[agent]
    }

    fn batch_set_state(&self, batch: &mut Self::Batch, agent: usize, state: StaticState) {
        batch[agent] = state;
    }

    /// Static agents never move, draw no randomness, and emit no events:
    /// the batch step is a no-op with measured drift exactly zero.
    fn step_batch<R: Rng + ?Sized, F: FnMut(usize, StepEvents)>(
        &self,
        batch: &mut Self::Batch,
        positions: &mut [Point],
        _rng: &mut R,
        _on_events: F,
    ) -> f64 {
        assert_eq!(
            batch.len(),
            positions.len(),
            "batch and position array must agree on the population size"
        );
        0.0
    }

    /// Chunked form of the no-op: streams untouched, zero drift.
    fn step_batch_chunked<R: Rng + Send, F: FnMut(usize, StepEvents)>(
        &self,
        batch: &mut Self::Batch,
        positions: &mut [Point],
        chunks: &mut [ChunkCtx<R>],
        _pool: &WorkerPool,
        _on_events: F,
    ) -> f64 {
        assert_eq!(
            batch.len(),
            positions.len(),
            "batch and position array must agree on the population size"
        );
        assert_eq!(
            chunks.len(),
            crate::model::move_chunk_count(positions.len()),
            "one context per move chunk"
        );
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(Static::new(0.0, Placement::Uniform).is_err());
        assert!(Static::new(-1.0, Placement::Uniform).is_err());
        let m = Static::new(10.0, Placement::MrwpStationary).unwrap();
        assert_eq!(m.placement(), Placement::MrwpStationary);
        assert_eq!(m.speed(), 0.0);
    }

    #[test]
    fn never_moves() {
        let m = Static::new(10.0, Placement::Uniform).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut st = m.init_stationary(&mut rng);
        let p = m.position(&st);
        for _ in 0..10 {
            assert_eq!(m.step(&mut st, &mut rng), StepEvents::default());
            assert_eq!(m.position(&st), p);
        }
    }

    #[test]
    fn placements_differ_in_shape() {
        let side = 60.0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let n = 30_000;
        let center_count = |placement: Placement, rng: &mut rand::rngs::StdRng| {
            let m = Static::new(side, placement).unwrap();
            (0..n)
                .filter(|_| {
                    let p = m.position(&m.init_stationary(rng));
                    (p.x - side / 2.0).abs() < side / 8.0 && (p.y - side / 2.0).abs() < side / 8.0
                })
                .count()
        };
        let uniform = center_count(Placement::Uniform, &mut rng);
        let mrwp = center_count(Placement::MrwpStationary, &mut rng);
        assert!(
            mrwp as f64 > uniform as f64 * 1.15,
            "MRWP placement should be center-heavy ({mrwp} vs {uniform})"
        );
    }

    #[test]
    fn init_at_fixed_point() {
        let m = Static::new(10.0, Placement::Uniform).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let st = m.init_at(Point::new(1.0, 2.0), &mut rng);
        assert_eq!(m.position(&st), Point::new(1.0, 2.0));
    }
}
