//! Turn-count instrumentation for the Lemma 13 experiment.
//!
//! Lemma 13 bounds `H_{t,τ}` — the number of direction changes an agent
//! performs in the window `[t, t + τ]` — by `4·log n / log(L/(vτ))` w.h.p.
//! [`TurnRecorder`] collects per-agent direction-change timestamps during a
//! simulation and answers windowed count queries afterwards.

/// Records direction-change timestamps per agent and answers
/// `H_{t,τ}`-style window queries.
///
/// # Examples
///
/// ```
/// use fastflood_mobility::TurnRecorder;
///
/// let mut rec = TurnRecorder::new(2);
/// rec.record(0, 3, 1);
/// rec.record(0, 5, 2);
/// rec.record(1, 10, 1);
/// assert_eq!(rec.count_in_window(0, 3, 2), 3); // turns in [3, 5]
/// assert_eq!(rec.count_in_window(0, 6, 4), 0);
/// assert_eq!(rec.max_in_window(4), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TurnRecorder {
    /// For each agent, the (sorted) time steps at which direction changes
    /// occurred, repeated per change in the same step.
    timestamps: Vec<Vec<u32>>,
}

impl TurnRecorder {
    /// Creates a recorder for `num_agents` agents.
    pub fn new(num_agents: usize) -> TurnRecorder {
        TurnRecorder {
            timestamps: vec![Vec::new(); num_agents],
        }
    }

    /// Number of tracked agents.
    pub fn num_agents(&self) -> usize {
        self.timestamps.len()
    }

    /// The recorded (sorted) direction-change timestamps of one agent,
    /// for checkpointing.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn agent_timestamps(&self, agent: usize) -> &[u32] {
        &self.timestamps[agent]
    }

    /// Rebuilds a recorder from per-agent timestamp lists (the inverse
    /// of [`TurnRecorder::agent_timestamps`], used by checkpoint
    /// restore). Returns `None` when any agent's list is not
    /// nondecreasing — such data cannot have come from a recorder.
    pub fn from_timestamps(timestamps: Vec<Vec<u32>>) -> Option<TurnRecorder> {
        for ts in &timestamps {
            if ts.windows(2).any(|w| w[0] > w[1]) {
                return None;
            }
        }
        Some(TurnRecorder { timestamps })
    }

    /// Records `count` direction changes for `agent` at time step `t`.
    ///
    /// Time steps must be fed in nondecreasing order per agent (the
    /// simulation loop does this naturally).
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range or `t` precedes an already
    /// recorded timestamp for the agent.
    pub fn record(&mut self, agent: usize, t: u32, count: u32) {
        let ts = &mut self.timestamps[agent];
        if let Some(&last) = ts.last() {
            assert!(t >= last, "timestamps must be nondecreasing per agent");
        }
        for _ in 0..count {
            ts.push(t);
        }
    }

    /// Total direction changes recorded for `agent`.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn total(&self, agent: usize) -> usize {
        self.timestamps[agent].len()
    }

    /// Direction changes of `agent` within the closed window
    /// `[t, t + tau]`.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn count_in_window(&self, agent: usize, t: u32, tau: u32) -> usize {
        let ts = &self.timestamps[agent];
        let lo = ts.partition_point(|&x| x < t);
        let hi = ts.partition_point(|&x| x <= t.saturating_add(tau));
        hi - lo
    }

    /// The maximum `H_{t,τ}` over *all* agents and *all* window starts,
    /// i.e. `max_a max_t count_in_window(a, t, tau)` — the quantity
    /// Lemma 13 bounds.
    ///
    /// Runs in `O(total changes)` per agent via a sliding window.
    pub fn max_in_window(&self, tau: u32) -> usize {
        let mut best = 0;
        for ts in &self.timestamps {
            let mut lo = 0usize;
            for hi in 0..ts.len() {
                // shrink until the window [ts[lo], ts[hi]] spans <= tau
                while ts[hi] - ts[lo] > tau {
                    lo += 1;
                }
                best = best.max(hi - lo + 1);
            }
        }
        best
    }

    /// The per-agent maxima of `H_{t,τ}` (same sliding window as
    /// [`TurnRecorder::max_in_window`], returned per agent).
    pub fn max_in_window_per_agent(&self, tau: u32) -> Vec<usize> {
        self.timestamps
            .iter()
            .map(|ts| {
                let mut best = 0;
                let mut lo = 0usize;
                for hi in 0..ts.len() {
                    while ts[hi] - ts[lo] > tau {
                        lo += 1;
                    }
                    best = best.max(hi - lo + 1);
                }
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder() {
        let rec = TurnRecorder::new(3);
        assert_eq!(rec.num_agents(), 3);
        assert_eq!(rec.total(0), 0);
        assert_eq!(rec.count_in_window(0, 0, 100), 0);
        assert_eq!(rec.max_in_window(10), 0);
    }

    #[test]
    fn windowed_counts() {
        let mut rec = TurnRecorder::new(1);
        for (t, c) in [(1, 1), (4, 1), (5, 2), (9, 1)] {
            rec.record(0, t, c);
        }
        assert_eq!(rec.total(0), 5);
        assert_eq!(rec.count_in_window(0, 0, 10), 5);
        assert_eq!(rec.count_in_window(0, 4, 1), 3); // [4,5]
        assert_eq!(rec.count_in_window(0, 5, 0), 2); // exactly t=5
        assert_eq!(rec.count_in_window(0, 6, 2), 0);
        assert_eq!(rec.count_in_window(0, 9, 100), 1);
    }

    #[test]
    fn max_window_across_agents() {
        let mut rec = TurnRecorder::new(2);
        rec.record(0, 0, 1);
        rec.record(0, 10, 1);
        rec.record(1, 3, 1);
        rec.record(1, 4, 1);
        rec.record(1, 5, 1);
        assert_eq!(rec.max_in_window(2), 3); // agent 1's burst
        assert_eq!(rec.max_in_window(0), 1);
        assert_eq!(rec.max_in_window(100), 3);
        assert_eq!(rec.max_in_window_per_agent(2), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn rejects_time_going_backwards() {
        let mut rec = TurnRecorder::new(1);
        rec.record(0, 5, 1);
        rec.record(0, 4, 1);
    }

    #[test]
    fn multiple_changes_same_step() {
        let mut rec = TurnRecorder::new(1);
        rec.record(0, 7, 3);
        assert_eq!(rec.count_in_window(0, 7, 0), 3);
        assert_eq!(rec.max_in_window(0), 3);
    }
}
