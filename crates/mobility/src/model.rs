//! The mobility-model abstraction the flooding engine is generic over.

use fastflood_geom::{Point, Rect};
use fastflood_parallel::{run_chunks2, WorkerPool};
use rand::{Rng, RngCore};

/// What happened to one agent during one time step.
///
/// The Lemma 13 experiment needs the number of direction changes per step;
/// models report them here so the engine can forward them to a
/// [`TurnRecorder`](crate::TurnRecorder) without re-deriving geometry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepEvents {
    /// Direction changes at L-path corners crossed during the step.
    pub turns: u32,
    /// Way-point arrivals (trip completions) during the step.
    pub arrivals: u32,
}

impl StepEvents {
    /// Total direction changes: corners plus arrivals.
    ///
    /// Lemma 13 counts every point where the agent changes direction along
    /// its journey; both corner turns and way-point arrivals qualify.
    pub fn direction_changes(&self) -> u32 {
        self.turns + self.arrivals
    }
}

/// Agents per chunk of the deterministic parallel move pass.
///
/// The chunk layout is a **pure function of the population size** —
/// agent `i` belongs to chunk `i / MOVE_CHUNK`, never re-balanced by
/// thread count — because each chunk owns a private RNG stream: the
/// layout is part of the parallel trajectory definition, so it must be
/// identical whatever the pool size or scheduling. 4096 agents keep
/// per-chunk overhead (one atomic claim, a cold read of the chunk's
/// stream + context, the event-scratch drain) below ~1% of the chunk's
/// memory traffic — measured: 1024-agent chunks cost the 1-thread
/// parallel path ~8% at n = 100k, 4096 cuts that to ~2% — while still
/// giving a wide pool tens of chunks to balance at the benchmark
/// sizes. Changing this constant changes parallel-mode trajectories
/// (never their statistics); the sequential path does not read it.
pub const MOVE_CHUNK: usize = 4096;

/// Number of move-pass chunks for a population of `n` agents (at least
/// one, so an empty population still has a well-formed layout).
pub fn move_chunk_count(n: usize) -> usize {
    n.div_ceil(MOVE_CHUNK).max(1)
}

/// 64-bit words fetched per refill of a [`BlockRng`] buffer.
pub const RNG_BLOCK: usize = 8;

/// A word-buffering adapter over an inner generator: pulls
/// [`RNG_BLOCK`] 64-bit words from the inner stream at a time and
/// serves them **in draw order**, so the sequence of words a consumer
/// sees is bitwise-identical to calling the inner generator directly —
/// only the *timing* of the underlying state advances changes (eight
/// back-to-back xoshiro steps amortize better than interleaving one
/// step into every boundary-pass agent).
///
/// Every distribution the move pass draws (`gen::<f64>`, `gen_bool`,
/// integer `gen_range`) bottoms out in `next_u64`, and `next_u32` here
/// takes the high half of a buffered word exactly like
/// [`SmallRng`](rand::rngs::SmallRng) does over its own state, so
/// wrapping a stream in `BlockRng` never changes any sampled value.
/// The buffer is a fixed inline array: no heap allocation, ever.
///
/// [`ChunkCtx`] wraps every per-chunk stream in one of these, which is
/// how block-batched RNG reaches both the native MRWP chunked path and
/// the AoS fallback without either knowing about it. Unconsumed words
/// simply carry over to the next step of the same chunk; chunk streams
/// feed nothing but the move pass, so carryover is unobservable.
#[derive(Debug, Clone)]
pub struct BlockRng<R> {
    inner: R,
    buf: [u64; RNG_BLOCK],
    /// Next unserved slot; `RNG_BLOCK` means the buffer is exhausted.
    pos: usize,
}

impl<R> BlockRng<R> {
    /// Wraps `inner`, starting with an empty buffer (the first draw
    /// triggers a refill, so a fresh wrapper replays the inner stream
    /// from its current position).
    pub fn new(inner: R) -> BlockRng<R> {
        BlockRng {
            inner,
            buf: [0; RNG_BLOCK],
            pos: RNG_BLOCK,
        }
    }

    /// Decomposes the wrapper into `(inner, buffer, position)` for
    /// checkpointing. Unconsumed buffered words are part of the stream
    /// state: a snapshot taken mid-block must resume serving the same
    /// words, so the buffer and cursor travel with the inner generator.
    pub fn snapshot_parts(&self) -> (&R, &[u64; RNG_BLOCK], usize) {
        (&self.inner, &self.buf, self.pos)
    }

    /// Rebuilds a wrapper from [`BlockRng::snapshot_parts`] output,
    /// continuing the word stream bitwise-identically. Returns `None`
    /// when `pos` is out of range (`> RNG_BLOCK`).
    pub fn from_snapshot_parts(inner: R, buf: [u64; RNG_BLOCK], pos: usize) -> Option<BlockRng<R>> {
        if pos > RNG_BLOCK {
            return None;
        }
        Some(BlockRng { inner, buf, pos })
    }
}

impl<R: RngCore> RngCore for BlockRng<R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos == RNG_BLOCK {
            for w in &mut self.buf {
                *w = self.inner.next_u64();
            }
            self.pos = 0;
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Per-chunk context of the parallel move pass: the chunk's private
/// random stream plus the scratch its task writes (measured drift and
/// deferred step events), merged by [`drain_chunks`] in canonical chunk
/// order after the parallel region.
///
/// The driver retains one `ChunkCtx` per chunk across steps (streams
/// must continue where they left off; the scratch keeps its capacity so
/// steady-state steps stay allocation-free).
#[derive(Debug, Clone)]
pub struct ChunkCtx<R> {
    /// The chunk's private random stream, advanced only by this chunk's
    /// agents, buffered in [`RNG_BLOCK`]-word blocks (draw order — and
    /// therefore every trajectory — is unchanged by the buffering; see
    /// [`BlockRng`]).
    pub(crate) rng: BlockRng<R>,
    /// Measured maximum displacement of this chunk's agents this step.
    pub(crate) drift: f64,
    /// Events recorded this step, in agent order within the chunk.
    pub(crate) events: Vec<(u32, StepEvents)>,
    /// Nanoseconds this chunk spent in the advance kernel this step
    /// (written only by models with a split move pass, under timing).
    pub(crate) kernel_ns: u64,
    /// Nanoseconds this chunk spent in the boundary pass this step.
    pub(crate) boundary_ns: u64,
}

impl<R> ChunkCtx<R> {
    /// Creates the context for one chunk of up to `chunk_len` agents
    /// with its private stream; the event scratch is fully reserved so
    /// steps never grow it.
    pub fn new(rng: R, chunk_len: usize) -> ChunkCtx<R> {
        ChunkCtx {
            rng: BlockRng::new(rng),
            drift: 0.0,
            events: Vec::with_capacity(chunk_len),
            kernel_ns: 0,
            boundary_ns: 0,
        }
    }

    /// Resets the per-step scratch (drift, events, phase timings); the
    /// stream keeps its position.
    pub fn begin(&mut self) {
        self.drift = 0.0;
        self.events.clear();
        self.kernel_ns = 0;
        self.boundary_ns = 0;
    }

    /// Records an event for `agent` (a global index).
    pub fn record(&mut self, agent: usize, ev: StepEvents) {
        self.events.push((agent as u32, ev));
    }

    /// Sets the chunk's measured drift for this step.
    pub fn set_drift(&mut self, drift: f64) {
        self.drift = drift;
    }

    /// The chunk's measured drift for this step.
    pub fn drift(&self) -> f64 {
        self.drift
    }

    /// The chunk's private stream, for checkpointing (buffer included).
    pub fn stream(&self) -> &BlockRng<R> {
        &self.rng
    }

    /// Replaces the chunk's private stream on restore; the per-step
    /// scratch is untouched (it is reset by [`ChunkCtx::begin`] anyway).
    pub fn set_stream(&mut self, rng: BlockRng<R>) {
        self.rng = rng;
    }
}

/// Merges per-chunk results after a parallel move pass: forwards every
/// recorded event in canonical (chunk, then agent) order — which is
/// global agent order, since chunks partition the index space
/// contiguously — and returns the maximum drift over all chunks.
pub fn drain_chunks<R, F: FnMut(usize, StepEvents)>(
    chunks: &mut [ChunkCtx<R>],
    mut on_events: F,
) -> f64 {
    let mut max_drift = 0.0f64;
    for c in chunks.iter_mut() {
        if c.drift > max_drift {
            max_drift = c.drift;
        }
        for &(i, ev) in &c.events {
            on_events(i as usize, ev);
        }
    }
    max_drift
}

/// A mobility model over a square region with synchronous unit time steps.
///
/// One [`Mobility::step`] advances an agent by exactly one time unit:
/// the agent travels distance `speed` along its (model-specific) route,
/// carrying leftover travel budget across corners and way-point arrivals,
/// so the discrete simulation samples the continuous-time trajectory at
/// integer times.
///
/// Implementations must keep agents inside [`Mobility::region`] forever.
///
/// # Batched stepping
///
/// A driver that advances *every* agent each step (the flooding engine's
/// move pass) should hold the population as one [`Mobility::Batch`] and
/// call [`Mobility::step_batch`], which advances all agents in one pass
/// and returns the **measured** maximum displacement of the step — a
/// per-step drift bound that is never looser than [`Mobility::speed`]
/// and often much tighter (paused or slow agents). Models with a natural
/// AoS state simply set `type Batch = Vec<Self::State>` and delegate to
/// [`step_batch_sequential`]; models with a hot/cold state split (e.g.
/// [`Mrwp`](crate::Mrwp)) pack the per-step-touched fields into
/// cache-dense parallel arrays instead. Whatever the layout, a batch
/// step must advance agents in index order and draw exactly the random
/// numbers the equivalent [`Mobility::step_from`] loop would, so batched
/// and scalar drivers stay in RNG lockstep.
pub trait Mobility {
    /// Per-agent trajectory state.
    type State: Clone + std::fmt::Debug + Send;

    /// The whole population's trajectory state in the layout the model
    /// steps fastest: `Vec<Self::State>` for AoS models, hot/cold
    /// parallel arrays for models that split per-step-touched fields
    /// from cold trip geometry.
    type Batch: Clone + std::fmt::Debug + Send;

    /// The square region agents live in.
    fn region(&self) -> Rect;

    /// Distance traveled per time step.
    fn speed(&self) -> f64;

    /// Draws an agent state from the model's stationary distribution
    /// (perfect simulation — no warm-up needed).
    fn init_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::State;

    /// Creates an agent at position `pos` beginning a fresh trip
    /// (a "cold start"; *not* stationary in general).
    ///
    /// # Panics
    ///
    /// Implementations may panic when `pos` lies outside the region.
    fn init_at<R: Rng + ?Sized>(&self, pos: Point, rng: &mut R) -> Self::State;

    /// The agent's current position.
    fn position(&self, state: &Self::State) -> Point;

    /// Advances the agent by one time unit, returning the step's events.
    fn step<R: Rng + ?Sized>(&self, state: &mut Self::State, rng: &mut R) -> StepEvents;

    /// Advances the agent by one time unit given its `current` position,
    /// returning the new position and the step's events.
    ///
    /// Semantically identical to [`Mobility::step`] followed by
    /// [`Mobility::position`] (the default implementation is exactly
    /// that), but models can override it with a fused fast path: for
    /// axis-aligned travel the common no-corner-crossed step is a single
    /// coordinate increment, skipping the full arc-length-to-point
    /// conversion. The flooding engine's move loop calls this.
    #[inline]
    fn step_from<R: Rng + ?Sized>(
        &self,
        state: &mut Self::State,
        current: Point,
        rng: &mut R,
    ) -> (Point, StepEvents) {
        let _ = current;
        let ev = self.step(state, rng);
        (self.position(state), ev)
    }

    /// Packs per-agent states into the model's batch layout (agent `i`
    /// of the batch is `states[i]`). The inverse views are
    /// [`Mobility::batch_state`] / [`Mobility::batch_set_state`].
    fn batch_from_states(&self, states: Vec<Self::State>) -> Self::Batch;

    /// Reconstructs agent `agent`'s scalar state from the batch.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `agent` is out of range.
    fn batch_state(&self, batch: &Self::Batch, agent: usize) -> Self::State;

    /// Overwrites agent `agent`'s state inside the batch (used by tests
    /// and scenario builders that pin individual agents).
    ///
    /// # Panics
    ///
    /// Implementations may panic when `agent` is out of range.
    fn batch_set_state(&self, batch: &mut Self::Batch, agent: usize, state: Self::State);

    /// Advances every agent in the batch by one time unit, updating
    /// `positions` in place (`positions[i]` must hold agent `i`'s
    /// current position on entry, and holds the post-step position on
    /// return).
    ///
    /// Returns the **measured drift** of the step: an upper bound on
    /// every agent's Euclidean displacement between the two step
    /// boundaries, computed from what actually happened rather than the
    /// worst-case [`Mobility::speed`]. The flooding engine accrues its
    /// spatial-index staleness budget from this value, so a step where
    /// all agents pause (or move slowly) widens the deferred re-binning
    /// window. The bound must be sound: no agent's actual displacement
    /// may exceed it.
    ///
    /// `on_events` is invoked, in agent order, for every agent whose
    /// step produced nonzero [`StepEvents`] (turns or arrivals).
    ///
    /// Semantically this is exactly a [`Mobility::step_from`] loop over
    /// agents `0..n` — identical trajectories, events, and RNG draws.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `positions` and the batch disagree
    /// on the population size.
    fn step_batch<R: Rng + ?Sized, F: FnMut(usize, StepEvents)>(
        &self,
        batch: &mut Self::Batch,
        positions: &mut [Point],
        rng: &mut R,
        on_events: F,
    ) -> f64;

    /// Turns per-step move-phase split timing on or off for `batch`.
    ///
    /// Models whose move pass has an internal phase structure (e.g. the
    /// MRWP advance-kernel / boundary-pass split) record per-phase
    /// nanoseconds into the batch while enabled, readable through
    /// [`Mobility::move_split_nanos`]. The default is a no-op: models
    /// with a monolithic move pass have nothing to split.
    fn enable_move_timing(&self, batch: &mut Self::Batch, on: bool) {
        let _ = (batch, on);
    }

    /// The last step's move-phase split as `(kernel_ns, boundary_ns)`,
    /// or `None` when the model has no split or timing is disabled (the
    /// default).
    fn move_split_nanos(&self, batch: &Self::Batch) -> Option<(u64, u64)> {
        let _ = batch;
        None
    }

    /// Advances every agent by one time unit in the fixed
    /// [`MOVE_CHUNK`] chunk geometry, each chunk drawing from **its own
    /// stream** (`chunks[c].rng`) and chunks executing concurrently on
    /// `pool` — the deterministic parallel move pass.
    ///
    /// Contract, on top of [`Mobility::step_batch`]'s semantics:
    ///
    /// * chunk `c` covers agents `c·MOVE_CHUNK ..` and steps them **in
    ///   index order** using only `chunks[c].rng`, so the result is a
    ///   pure function of `(batch, positions, chunk streams)` — bitwise
    ///   identical whatever the pool's thread count or scheduling;
    /// * trajectories *differ* from a [`Mobility::step_batch`] call on
    ///   a single stream (different draws reach different agents) but
    ///   are statistically the same process;
    /// * `on_events` fires in global agent order after all chunks
    ///   complete (see [`drain_chunks`]); the returned measured drift
    ///   is the maximum over chunks and bounds every agent's
    ///   displacement exactly as in `step_batch`.
    ///
    /// The default implementation is the **sequential reference**: it
    /// steps each chunk in order through the scalar state views
    /// ([`Mobility::batch_state`] / [`Mobility::batch_set_state`]) —
    /// correct, stream-identical to any conforming override, and the
    /// oracle the property tests compare real implementations against,
    /// but state-copying and single-threaded. Models override it:
    /// AoS models via [`step_batch_chunked_aos`], [`Mrwp`](crate::Mrwp)
    /// with a chunk-split of its hot/cold arrays.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `positions` and the batch
    /// disagree on the population size or `chunks` does not hold
    /// exactly [`move_chunk_count`]`(n)` contexts.
    fn step_batch_chunked<R: Rng + Send, F: FnMut(usize, StepEvents)>(
        &self,
        batch: &mut Self::Batch,
        positions: &mut [Point],
        chunks: &mut [ChunkCtx<R>],
        pool: &WorkerPool,
        on_events: F,
    ) -> f64 {
        let _ = pool;
        let n = positions.len();
        assert_eq!(
            chunks.len(),
            move_chunk_count(n),
            "one context per move chunk"
        );
        for (ci, ctx) in chunks.iter_mut().enumerate() {
            ctx.begin();
            let lo = ci * MOVE_CHUNK;
            let hi = ((ci + 1) * MOVE_CHUNK).min(n);
            let mut max_d2 = 0.0f64;
            for (k, pos) in positions[lo..hi].iter_mut().enumerate() {
                let i = lo + k;
                let mut st = self.batch_state(batch, i);
                let before = *pos;
                let (p, ev) = self.step_from(&mut st, before, &mut ctx.rng);
                self.batch_set_state(batch, i, st);
                *pos = p;
                let dx = p.x - before.x;
                let dy = p.y - before.y;
                let d2 = dx * dx + dy * dy;
                if d2 > max_d2 {
                    max_d2 = d2;
                }
                if ev.turns | ev.arrivals != 0 {
                    ctx.record(i, ev);
                }
            }
            ctx.set_drift(max_d2.sqrt());
        }
        drain_chunks(chunks, on_events)
    }
}

/// The reference [`Mobility::step_batch`] implementation for models
/// whose batch layout is a plain `Vec<State>`: a sequential
/// [`Mobility::step_from`] loop that measures the step's maximum
/// Euclidean displacement as it goes.
///
/// [`Rwp`](crate::Rwp), [`DiskWalk`](crate::DiskWalk),
/// [`Static`](crate::Static) and [`StreetMrwp`](crate::StreetMrwp)
/// delegate to this; it is also the behavioral oracle the batched-move
/// property tests compare specialized implementations against.
pub fn step_batch_sequential<M, R, F>(
    model: &M,
    states: &mut [M::State],
    positions: &mut [Point],
    rng: &mut R,
    mut on_events: F,
) -> f64
where
    M: Mobility + ?Sized,
    R: Rng + ?Sized,
    F: FnMut(usize, StepEvents),
{
    assert_eq!(
        states.len(),
        positions.len(),
        "batch and position array must agree on the population size"
    );
    let mut max_d2 = 0.0f64;
    for (i, state) in states.iter_mut().enumerate() {
        let before = positions[i];
        let (p, ev) = model.step_from(state, before, rng);
        positions[i] = p;
        let dx = p.x - before.x;
        let dy = p.y - before.y;
        let d2 = dx * dx + dy * dy;
        if d2 > max_d2 {
            max_d2 = d2;
        }
        if ev.turns | ev.arrivals != 0 {
            on_events(i, ev);
        }
    }
    max_d2.sqrt()
}

/// The parallel [`Mobility::step_batch_chunked`] implementation for
/// models whose batch layout is a plain `Vec<State>`: chunks of the
/// state and position arrays run as disjoint pool tasks, each stepping
/// its agents in index order through [`Mobility::step_from`] on the
/// chunk's private stream.
///
/// [`Rwp`](crate::Rwp), [`DiskWalk`](crate::DiskWalk),
/// [`Static`](crate::Static) and [`StreetMrwp`](crate::StreetMrwp)
/// delegate to this. Results are bitwise identical to the trait's
/// sequential reference default whatever the pool's thread count.
pub fn step_batch_chunked_aos<M, R, F>(
    model: &M,
    states: &mut [M::State],
    positions: &mut [Point],
    chunks: &mut [ChunkCtx<R>],
    pool: &WorkerPool,
    on_events: F,
) -> f64
where
    M: Mobility + Sync,
    R: Rng + Send,
    F: FnMut(usize, StepEvents),
{
    let n = positions.len();
    assert_eq!(
        states.len(),
        n,
        "batch and position array must agree on the population size"
    );
    assert_eq!(
        chunks.len(),
        move_chunk_count(n),
        "one context per move chunk"
    );
    run_chunks2(
        pool,
        MOVE_CHUNK,
        states,
        positions,
        chunks,
        |ci, st_part, pos_part, ctx| {
            ctx.begin();
            let base = ci * MOVE_CHUNK;
            let ChunkCtx {
                rng, drift, events, ..
            } = ctx;
            let mut max_d2 = 0.0f64;
            for (k, (st, pos)) in st_part.iter_mut().zip(pos_part.iter_mut()).enumerate() {
                let before = *pos;
                let (p, ev) = model.step_from(st, before, rng);
                *pos = p;
                let dx = p.x - before.x;
                let dy = p.y - before.y;
                let d2 = dx * dx + dy * dy;
                if d2 > max_d2 {
                    max_d2 = d2;
                }
                if ev.turns | ev.arrivals != 0 {
                    events.push(((base + k) as u32, ev));
                }
            }
            *drift = max_d2.sqrt();
        },
    );
    drain_chunks(chunks, on_events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_events_total() {
        let e = StepEvents {
            turns: 2,
            arrivals: 1,
        };
        assert_eq!(e.direction_changes(), 3);
        assert_eq!(StepEvents::default().direction_changes(), 0);
    }
}
