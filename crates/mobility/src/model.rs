//! The mobility-model abstraction the flooding engine is generic over.

use fastflood_geom::{Point, Rect};
use rand::Rng;

/// What happened to one agent during one time step.
///
/// The Lemma 13 experiment needs the number of direction changes per step;
/// models report them here so the engine can forward them to a
/// [`TurnRecorder`](crate::TurnRecorder) without re-deriving geometry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepEvents {
    /// Direction changes at L-path corners crossed during the step.
    pub turns: u32,
    /// Way-point arrivals (trip completions) during the step.
    pub arrivals: u32,
}

impl StepEvents {
    /// Total direction changes: corners plus arrivals.
    ///
    /// Lemma 13 counts every point where the agent changes direction along
    /// its journey; both corner turns and way-point arrivals qualify.
    pub fn direction_changes(&self) -> u32 {
        self.turns + self.arrivals
    }
}

/// A mobility model over a square region with synchronous unit time steps.
///
/// One [`Mobility::step`] advances an agent by exactly one time unit:
/// the agent travels distance `speed` along its (model-specific) route,
/// carrying leftover travel budget across corners and way-point arrivals,
/// so the discrete simulation samples the continuous-time trajectory at
/// integer times.
///
/// Implementations must keep agents inside [`Mobility::region`] forever.
///
/// # Batched stepping
///
/// A driver that advances *every* agent each step (the flooding engine's
/// move pass) should hold the population as one [`Mobility::Batch`] and
/// call [`Mobility::step_batch`], which advances all agents in one pass
/// and returns the **measured** maximum displacement of the step — a
/// per-step drift bound that is never looser than [`Mobility::speed`]
/// and often much tighter (paused or slow agents). Models with a natural
/// AoS state simply set `type Batch = Vec<Self::State>` and delegate to
/// [`step_batch_sequential`]; models with a hot/cold state split (e.g.
/// [`Mrwp`](crate::Mrwp)) pack the per-step-touched fields into
/// cache-dense parallel arrays instead. Whatever the layout, a batch
/// step must advance agents in index order and draw exactly the random
/// numbers the equivalent [`Mobility::step_from`] loop would, so batched
/// and scalar drivers stay in RNG lockstep.
pub trait Mobility {
    /// Per-agent trajectory state.
    type State: Clone + std::fmt::Debug + Send;

    /// The whole population's trajectory state in the layout the model
    /// steps fastest: `Vec<Self::State>` for AoS models, hot/cold
    /// parallel arrays for models that split per-step-touched fields
    /// from cold trip geometry.
    type Batch: Clone + std::fmt::Debug + Send;

    /// The square region agents live in.
    fn region(&self) -> Rect;

    /// Distance traveled per time step.
    fn speed(&self) -> f64;

    /// Draws an agent state from the model's stationary distribution
    /// (perfect simulation — no warm-up needed).
    fn init_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::State;

    /// Creates an agent at position `pos` beginning a fresh trip
    /// (a "cold start"; *not* stationary in general).
    ///
    /// # Panics
    ///
    /// Implementations may panic when `pos` lies outside the region.
    fn init_at<R: Rng + ?Sized>(&self, pos: Point, rng: &mut R) -> Self::State;

    /// The agent's current position.
    fn position(&self, state: &Self::State) -> Point;

    /// Advances the agent by one time unit, returning the step's events.
    fn step<R: Rng + ?Sized>(&self, state: &mut Self::State, rng: &mut R) -> StepEvents;

    /// Advances the agent by one time unit given its `current` position,
    /// returning the new position and the step's events.
    ///
    /// Semantically identical to [`Mobility::step`] followed by
    /// [`Mobility::position`] (the default implementation is exactly
    /// that), but models can override it with a fused fast path: for
    /// axis-aligned travel the common no-corner-crossed step is a single
    /// coordinate increment, skipping the full arc-length-to-point
    /// conversion. The flooding engine's move loop calls this.
    #[inline]
    fn step_from<R: Rng + ?Sized>(
        &self,
        state: &mut Self::State,
        current: Point,
        rng: &mut R,
    ) -> (Point, StepEvents) {
        let _ = current;
        let ev = self.step(state, rng);
        (self.position(state), ev)
    }

    /// Packs per-agent states into the model's batch layout (agent `i`
    /// of the batch is `states[i]`). The inverse views are
    /// [`Mobility::batch_state`] / [`Mobility::batch_set_state`].
    fn batch_from_states(&self, states: Vec<Self::State>) -> Self::Batch;

    /// Reconstructs agent `agent`'s scalar state from the batch.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `agent` is out of range.
    fn batch_state(&self, batch: &Self::Batch, agent: usize) -> Self::State;

    /// Overwrites agent `agent`'s state inside the batch (used by tests
    /// and scenario builders that pin individual agents).
    ///
    /// # Panics
    ///
    /// Implementations may panic when `agent` is out of range.
    fn batch_set_state(&self, batch: &mut Self::Batch, agent: usize, state: Self::State);

    /// Advances every agent in the batch by one time unit, updating
    /// `positions` in place (`positions[i]` must hold agent `i`'s
    /// current position on entry, and holds the post-step position on
    /// return).
    ///
    /// Returns the **measured drift** of the step: an upper bound on
    /// every agent's Euclidean displacement between the two step
    /// boundaries, computed from what actually happened rather than the
    /// worst-case [`Mobility::speed`]. The flooding engine accrues its
    /// spatial-index staleness budget from this value, so a step where
    /// all agents pause (or move slowly) widens the deferred re-binning
    /// window. The bound must be sound: no agent's actual displacement
    /// may exceed it.
    ///
    /// `on_events` is invoked, in agent order, for every agent whose
    /// step produced nonzero [`StepEvents`] (turns or arrivals).
    ///
    /// Semantically this is exactly a [`Mobility::step_from`] loop over
    /// agents `0..n` — identical trajectories, events, and RNG draws.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `positions` and the batch disagree
    /// on the population size.
    fn step_batch<R: Rng + ?Sized, F: FnMut(usize, StepEvents)>(
        &self,
        batch: &mut Self::Batch,
        positions: &mut [Point],
        rng: &mut R,
        on_events: F,
    ) -> f64;
}

/// The reference [`Mobility::step_batch`] implementation for models
/// whose batch layout is a plain `Vec<State>`: a sequential
/// [`Mobility::step_from`] loop that measures the step's maximum
/// Euclidean displacement as it goes.
///
/// [`Rwp`](crate::Rwp), [`DiskWalk`](crate::DiskWalk),
/// [`Static`](crate::Static) and [`StreetMrwp`](crate::StreetMrwp)
/// delegate to this; it is also the behavioral oracle the batched-move
/// property tests compare specialized implementations against.
pub fn step_batch_sequential<M, R, F>(
    model: &M,
    states: &mut [M::State],
    positions: &mut [Point],
    rng: &mut R,
    mut on_events: F,
) -> f64
where
    M: Mobility + ?Sized,
    R: Rng + ?Sized,
    F: FnMut(usize, StepEvents),
{
    assert_eq!(
        states.len(),
        positions.len(),
        "batch and position array must agree on the population size"
    );
    let mut max_d2 = 0.0f64;
    for (i, state) in states.iter_mut().enumerate() {
        let before = positions[i];
        let (p, ev) = model.step_from(state, before, rng);
        positions[i] = p;
        let dx = p.x - before.x;
        let dy = p.y - before.y;
        let d2 = dx * dx + dy * dy;
        if d2 > max_d2 {
            max_d2 = d2;
        }
        if ev.turns | ev.arrivals != 0 {
            on_events(i, ev);
        }
    }
    max_d2.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_events_total() {
        let e = StepEvents {
            turns: 2,
            arrivals: 1,
        };
        assert_eq!(e.direction_changes(), 3);
        assert_eq!(StepEvents::default().direction_changes(), 0);
    }
}
