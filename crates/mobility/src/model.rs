//! The mobility-model abstraction the flooding engine is generic over.

use fastflood_geom::{Point, Rect};
use rand::Rng;

/// What happened to one agent during one time step.
///
/// The Lemma 13 experiment needs the number of direction changes per step;
/// models report them here so the engine can forward them to a
/// [`TurnRecorder`](crate::TurnRecorder) without re-deriving geometry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepEvents {
    /// Direction changes at L-path corners crossed during the step.
    pub turns: u32,
    /// Way-point arrivals (trip completions) during the step.
    pub arrivals: u32,
}

impl StepEvents {
    /// Total direction changes: corners plus arrivals.
    ///
    /// Lemma 13 counts every point where the agent changes direction along
    /// its journey; both corner turns and way-point arrivals qualify.
    pub fn direction_changes(&self) -> u32 {
        self.turns + self.arrivals
    }
}

/// A mobility model over a square region with synchronous unit time steps.
///
/// One [`Mobility::step`] advances an agent by exactly one time unit:
/// the agent travels distance `speed` along its (model-specific) route,
/// carrying leftover travel budget across corners and way-point arrivals,
/// so the discrete simulation samples the continuous-time trajectory at
/// integer times.
///
/// Implementations must keep agents inside [`Mobility::region`] forever.
pub trait Mobility {
    /// Per-agent trajectory state.
    type State: Clone + std::fmt::Debug + Send;

    /// The square region agents live in.
    fn region(&self) -> Rect;

    /// Distance traveled per time step.
    fn speed(&self) -> f64;

    /// Draws an agent state from the model's stationary distribution
    /// (perfect simulation — no warm-up needed).
    fn init_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::State;

    /// Creates an agent at position `pos` beginning a fresh trip
    /// (a "cold start"; *not* stationary in general).
    ///
    /// # Panics
    ///
    /// Implementations may panic when `pos` lies outside the region.
    fn init_at<R: Rng + ?Sized>(&self, pos: Point, rng: &mut R) -> Self::State;

    /// The agent's current position.
    fn position(&self, state: &Self::State) -> Point;

    /// Advances the agent by one time unit, returning the step's events.
    fn step<R: Rng + ?Sized>(&self, state: &mut Self::State, rng: &mut R) -> StepEvents;

    /// Advances the agent by one time unit given its `current` position,
    /// returning the new position and the step's events.
    ///
    /// Semantically identical to [`Mobility::step`] followed by
    /// [`Mobility::position`] (the default implementation is exactly
    /// that), but models can override it with a fused fast path: for
    /// axis-aligned travel the common no-corner-crossed step is a single
    /// coordinate increment, skipping the full arc-length-to-point
    /// conversion. The flooding engine's move loop calls this.
    #[inline]
    fn step_from<R: Rng + ?Sized>(
        &self,
        state: &mut Self::State,
        current: Point,
        rng: &mut R,
    ) -> (Point, StepEvents) {
        let _ = current;
        let ev = self.step(state, rng);
        (self.position(state), ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_events_total() {
        let e = StepEvents {
            turns: 2,
            arrivals: 1,
        };
        assert_eq!(e.direction_changes(), 3);
        assert_eq!(StepEvents::default().direction_changes(), 0);
    }
}
