//! The disk-based random-walk model of the authors' earlier papers
//! \[10, 11\], used as the "uniform stationary distribution" baseline.

use crate::model::{step_batch_chunked_aos, step_batch_sequential, ChunkCtx};
use crate::snapshot::{ByteReader, ByteWriter, SnapshotState};
use crate::{Mobility, MobilityError, StepEvents};
use fastflood_geom::{Point, Rect};
use fastflood_parallel::WorkerPool;
use rand::Rng;

/// Random-walk mobility: each trip's destination is drawn uniformly from
/// the *disk* of radius `walk_radius` around the current position
/// (intersected with the square), traveled in a straight line.
///
/// This is the mobility family analyzed in the authors' previous works
/// \[10, 11\] ("agents perform a sort of independent random walks over a
/// square"), whose stationary spatial distribution is *almost uniform* —
/// the key contrast with MRWP's center-heavy density. `init_stationary`
/// places agents uniformly (the model's stationary distribution up to
/// `O(walk_radius/L)` border effects, documented in DESIGN.md).
///
/// # Examples
///
/// ```
/// use fastflood_mobility::{DiskWalk, Mobility};
/// use rand::SeedableRng;
///
/// let model = DiskWalk::new(100.0, 1.0, 10.0)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let mut st = model.init_stationary(&mut rng);
/// model.step(&mut st, &mut rng);
/// assert!(model.region().contains(model.position(&st)));
/// # Ok::<(), fastflood_mobility::MobilityError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiskWalk {
    side: f64,
    speed: f64,
    walk_radius: f64,
}

/// Trajectory state of one disk-walk agent.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiskWalkState {
    start: Point,
    dest: Point,
    s: f64,
}

impl DiskWalkState {
    /// The current trip destination.
    pub fn dest(&self) -> Point {
        self.dest
    }
}

impl SnapshotState for DiskWalkState {
    const STATE_TAG: u32 = u32::from_le_bytes(*b"DISK");

    /// Layout: segment endpoints then progress — the whole state.
    fn write_state(&self, w: &mut ByteWriter) {
        w.put_point(self.start);
        w.put_point(self.dest);
        w.put_f64(self.s);
    }

    fn read_state(r: &mut ByteReader<'_>) -> Option<DiskWalkState> {
        Some(DiskWalkState {
            start: r.get_point()?,
            dest: r.get_point()?,
            s: r.get_f64()?,
        })
    }
}

impl DiskWalk {
    /// Creates the model over `[0, side]²`, speed `speed`, move radius
    /// `walk_radius`.
    ///
    /// # Errors
    ///
    /// * [`MobilityError::BadSide`] / [`MobilityError::BadSpeed`] as usual;
    /// * [`MobilityError::BadRadius`] — `walk_radius` not strictly
    ///   positive/finite.
    pub fn new(side: f64, speed: f64, walk_radius: f64) -> Result<DiskWalk, MobilityError> {
        if side <= 0.0 || !side.is_finite() {
            return Err(MobilityError::BadSide(side));
        }
        if speed < 0.0 || !speed.is_finite() {
            return Err(MobilityError::BadSpeed(speed));
        }
        if walk_radius <= 0.0 || !walk_radius.is_finite() {
            return Err(MobilityError::BadRadius(walk_radius));
        }
        Ok(DiskWalk {
            side,
            speed,
            walk_radius,
        })
    }

    /// Side length `L` of the region.
    #[inline]
    pub fn side(&self) -> f64 {
        self.side
    }

    /// The per-trip move radius `ρ`.
    #[inline]
    pub fn walk_radius(&self) -> f64 {
        self.walk_radius
    }

    /// Uniform point in (disk of `walk_radius` around `c`) ∩ region, by
    /// rejection from the disk; the intersection is nonempty since `c` is
    /// inside the region.
    fn disk_dest<R: Rng + ?Sized>(&self, c: Point, rng: &mut R) -> Point {
        let region = self.region();
        loop {
            // uniform in the disk: rejection from the bounding square
            let dx = (2.0 * rng.gen::<f64>() - 1.0) * self.walk_radius;
            let dy = (2.0 * rng.gen::<f64>() - 1.0) * self.walk_radius;
            if dx * dx + dy * dy > self.walk_radius * self.walk_radius {
                continue;
            }
            let p = Point::new(c.x + dx, c.y + dy);
            if region.contains(p) {
                return p;
            }
        }
    }
}

impl Mobility for DiskWalk {
    type State = DiskWalkState;
    /// AoS batch: straight-line trips touch the whole state every step,
    /// so there is no hot/cold split to exploit.
    type Batch = Vec<DiskWalkState>;

    fn region(&self) -> Rect {
        Rect::square(self.side).expect("validated side")
    }

    fn speed(&self) -> f64 {
        self.speed
    }

    fn init_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> DiskWalkState {
        // The stationary distribution of this walk is uniform up to border
        // effects of order walk_radius/side (see DESIGN.md); uniform
        // placement is the standard approximation used in [10, 11].
        let pos = Point::new(self.side * rng.gen::<f64>(), self.side * rng.gen::<f64>());
        self.init_at(pos, rng)
    }

    fn init_at<R: Rng + ?Sized>(&self, pos: Point, rng: &mut R) -> DiskWalkState {
        assert!(
            self.region().contains(pos),
            "initial position {pos} outside the region"
        );
        DiskWalkState {
            start: pos,
            dest: self.disk_dest(pos, rng),
            s: 0.0,
        }
    }

    fn position(&self, state: &DiskWalkState) -> Point {
        let len = state.start.euclid(state.dest);
        if len == 0.0 {
            return state.start;
        }
        state
            .start
            .lerp(state.dest, (state.s / len).clamp(0.0, 1.0))
    }

    fn step<R: Rng + ?Sized>(&self, state: &mut DiskWalkState, rng: &mut R) -> StepEvents {
        let mut budget = self.speed;
        let mut events = StepEvents::default();
        let mut guard = 0;
        loop {
            let len = state.start.euclid(state.dest);
            let remaining = (len - state.s).max(0.0);
            if budget < remaining {
                state.s += budget;
                break;
            }
            budget -= remaining;
            events.arrivals += 1;
            let from = state.dest;
            *state = DiskWalkState {
                start: from,
                dest: self.disk_dest(from, rng),
                s: 0.0,
            };
            guard += 1;
            if guard > 10_000 {
                break;
            }
        }
        events
    }

    fn batch_from_states(&self, states: Vec<DiskWalkState>) -> Self::Batch {
        states
    }

    fn batch_state(&self, batch: &Self::Batch, agent: usize) -> DiskWalkState {
        batch[agent].clone()
    }

    fn batch_set_state(&self, batch: &mut Self::Batch, agent: usize, state: DiskWalkState) {
        batch[agent] = state;
    }

    fn step_batch<R: Rng + ?Sized, F: FnMut(usize, StepEvents)>(
        &self,
        batch: &mut Self::Batch,
        positions: &mut [Point],
        rng: &mut R,
        on_events: F,
    ) -> f64 {
        step_batch_sequential(self, batch, positions, rng, on_events)
    }

    fn step_batch_chunked<R: Rng + Send, F: FnMut(usize, StepEvents)>(
        &self,
        batch: &mut Self::Batch,
        positions: &mut [Point],
        chunks: &mut [ChunkCtx<R>],
        pool: &WorkerPool,
        on_events: F,
    ) -> f64 {
        step_batch_chunked_aos(self, batch, positions, chunks, pool, on_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const L: f64 = 100.0;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn construction_validates() {
        assert!(DiskWalk::new(0.0, 1.0, 5.0).is_err());
        assert!(DiskWalk::new(L, -1.0, 5.0).is_err());
        assert!(DiskWalk::new(L, 1.0, 0.0).is_err());
        assert!(DiskWalk::new(L, 1.0, f64::NAN).is_err());
        let m = DiskWalk::new(L, 1.0, 5.0).unwrap();
        assert_eq!(m.walk_radius(), 5.0);
    }

    #[test]
    fn trips_stay_within_walk_radius() {
        let model = DiskWalk::new(L, 1.0, 8.0).unwrap();
        let mut r = rng(1);
        let mut st = model.init_stationary(&mut r);
        for _ in 0..100 {
            let from = st.start;
            assert!(from.euclid(st.dest) <= 8.0 + 1e-9);
            model.step(&mut st, &mut r);
            assert!(model.region().contains(model.position(&st)));
        }
    }

    #[test]
    fn stationary_is_roughly_uniform() {
        // quarter-counts should be near n/4 each (no center concentration)
        let model = DiskWalk::new(L, 1.0, 10.0).unwrap();
        let mut r = rng(2);
        let n = 40_000;
        let mut q = [0usize; 4];
        for _ in 0..n {
            let p = model.position(&model.init_stationary(&mut r));
            let i = (p.x > L / 2.0) as usize + 2 * ((p.y > L / 2.0) as usize);
            q[i] += 1;
        }
        for c in q {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.01, "quadrant fraction {frac}");
        }
    }

    #[test]
    fn corner_agent_keeps_moving() {
        // destinations from a corner still exist (disk ∩ region nonempty)
        let model = DiskWalk::new(L, 2.0, 5.0).unwrap();
        let mut r = rng(3);
        let mut st = model.init_at(Point::new(0.0, 0.0), &mut r);
        let mut moved = false;
        for _ in 0..20 {
            let before = model.position(&st);
            model.step(&mut st, &mut r);
            if model.position(&st) != before {
                moved = true;
            }
            assert!(model.region().contains(model.position(&st)));
        }
        assert!(moved);
    }

    #[test]
    fn displacement_per_step_bounded_by_speed() {
        let model = DiskWalk::new(L, 3.0, 10.0).unwrap();
        let mut r = rng(4);
        let mut st = model.init_stationary(&mut r);
        for _ in 0..200 {
            let before = model.position(&st);
            model.step(&mut st, &mut r);
            assert!(before.euclid(model.position(&st)) <= 3.0 + 1e-9);
        }
    }
}
