//! Closed-form stationary distributions of the MRWP model and exact
//! samplers for them.
//!
//! * **Theorem 1** (from \[13\]): the stationary *spatial* probability
//!   density is
//!   `f(x, y) = 3(x + y)/L³ − 3(x² + y²)/L⁴`.
//! * **Theorem 2** (from \[12\]): the stationary *destination* distribution
//!   of an agent at `(x0, y0)` has a piecewise-constant continuous part on
//!   the four quadrants around the agent, plus atoms on the four
//!   axis-parallel segments through the agent (the "cross"), whose total
//!   probability is exactly `1/2` (Eqs. 4–5).
//!
//! The sampler exploits that `f(x, y) = g(x)/L·L⁻¹… ` decomposes as an even
//! mixture: with probability 1/2 draw `x` from the `Beta(2, 2)` density
//! `6t(L−t)/L³` and `y` uniform, otherwise swap the roles. A `Beta(2, 2)`
//! variate is the median of three independent uniforms, so the sampler is
//! exact (no rejection, no numerical inversion).
//!
//! All functions take the region side `L` explicitly; they are pure
//! formulas, deliberately free of any model state.

use fastflood_geom::{Cardinal, Point, Rect};
use rand::Rng;

/// One of the four open quadrants around an agent position, named by
/// compass corner (south-west = both coordinates smaller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quadrant {
    /// `x < x0, y < y0`.
    Sw,
    /// `x > x0, y < y0`.
    Se,
    /// `x < x0, y > y0`.
    Nw,
    /// `x > x0, y > y0`.
    Ne,
}

impl Quadrant {
    /// All four quadrants.
    pub const ALL: [Quadrant; 4] = [Quadrant::Sw, Quadrant::Se, Quadrant::Nw, Quadrant::Ne];

    /// Classifies `dest` relative to `pos`; `None` when `dest` lies on the
    /// cross (shares a coordinate with `pos`).
    pub fn classify(pos: Point, dest: Point) -> Option<Quadrant> {
        if dest.x == pos.x || dest.y == pos.y {
            return None;
        }
        Some(match (dest.x < pos.x, dest.y < pos.y) {
            (true, true) => Quadrant::Sw,
            (false, true) => Quadrant::Se,
            (true, false) => Quadrant::Nw,
            (false, false) => Quadrant::Ne,
        })
    }
}

fn assert_side(l: f64) {
    debug_assert!(
        l > 0.0 && l.is_finite(),
        "region side must be positive, got {l}"
    );
}

/// The stationary spatial density `f(x, y)` of Theorem 1.
///
/// Zero outside `[0, L]²`; maximal at the center where it equals
/// `3/(2L²)`.
///
/// # Examples
///
/// ```
/// use fastflood_mobility::distributions::spatial_density;
///
/// let l = 10.0;
/// // corners have zero density
/// assert_eq!(spatial_density(l, 0.0, 0.0), 0.0);
/// // center has the maximum 3/(2L²)
/// assert!((spatial_density(l, 5.0, 5.0) - 0.015).abs() < 1e-12);
/// ```
pub fn spatial_density(l: f64, x: f64, y: f64) -> f64 {
    assert_side(l);
    if !(0.0..=l).contains(&x) || !(0.0..=l).contains(&y) {
        return 0.0;
    }
    3.0 / l.powi(3) * (x + y) - 3.0 / l.powi(4) * (x * x + y * y)
}

/// The maximum of the spatial density, attained at the center:
/// `f(L/2, L/2) = 3/(2L²)`.
pub fn spatial_max_density(l: f64) -> f64 {
    assert_side(l);
    1.5 / (l * l)
}

/// Marginal density of one coordinate under Theorem 1:
/// `f_X(t) = 3t(L−t)/L³ + 1/(2L)` — an even mixture of a scaled
/// `Beta(2, 2)` and the uniform distribution.
pub fn spatial_marginal_density(l: f64, t: f64) -> f64 {
    assert_side(l);
    if !(0.0..=l).contains(&t) {
        return 0.0;
    }
    3.0 * t * (l - t) / l.powi(3) + 0.5 / l
}

/// Marginal CDF of one coordinate under Theorem 1.
///
/// `F_X(t) = (3Lt²/2 − t³)/L³ + t/(2L)`, clamped to `[0, 1]` outside the
/// region.
///
/// # Examples
///
/// ```
/// use fastflood_mobility::distributions::spatial_marginal_cdf;
///
/// assert_eq!(spatial_marginal_cdf(10.0, 0.0), 0.0);
/// assert_eq!(spatial_marginal_cdf(10.0, 10.0), 1.0);
/// assert!((spatial_marginal_cdf(10.0, 5.0) - 0.5).abs() < 1e-12);
/// ```
pub fn spatial_marginal_cdf(l: f64, t: f64) -> f64 {
    assert_side(l);
    if t <= 0.0 {
        return 0.0;
    }
    if t >= l {
        return 1.0;
    }
    (1.5 * l * t * t - t.powi(3)) / l.powi(3) + 0.5 * t / l
}

/// Exact mass `∫∫_rect f(x, y) dx dy` of the Theorem 1 density over an
/// axis-aligned rectangle (clipped to `[0, L]²`).
///
/// This is what Definition 4 compares against the `(3/8)·ln n / n`
/// threshold to classify cells as Central Zone or Suburb.
pub fn rect_mass(l: f64, rect: &Rect) -> f64 {
    assert_side(l);
    let region = Rect::square(l).expect("validated side");
    let Some(clipped) = region.intersection(rect) else {
        return 0.0;
    };
    let (x0, y0) = (clipped.min().x, clipped.min().y);
    let (x1, y1) = (clipped.max().x, clipped.max().y);
    let dx = x1 - x0;
    let dy = y1 - y0;
    // ∫∫ (x + y) = (x1²−x0²)/2·dy + (y1²−y0²)/2·dx
    let lin = 0.5 * (x1 * x1 - x0 * x0) * dy + 0.5 * (y1 * y1 - y0 * y0) * dx;
    // ∫∫ (x² + y²) = (x1³−x0³)/3·dy + (y1³−y0³)/3·dx
    let quad = (x1.powi(3) - x0.powi(3)) / 3.0 * dy + (y1.powi(3) - y0.powi(3)) / 3.0 * dx;
    3.0 / l.powi(3) * lin - 3.0 / l.powi(4) * quad
}

/// The Observation 5 closed form for the mass of the square cell with
/// south-west corner `(x0, y0)` and side `cell_len`:
///
/// `3ℓ²/L⁴ · ( ℓ(3L−2ℓ)/3 + x0(L−ℓ−x0) + y0(L−ℓ−y0) )`.
///
/// Agrees with [`rect_mass`] on cells fully inside the region (tested).
pub fn cell_mass_obs5(l: f64, cell_len: f64, x0: f64, y0: f64) -> f64 {
    assert_side(l);
    let ell = cell_len;
    3.0 * ell * ell / l.powi(4)
        * (ell / 3.0 * (3.0 * l - 2.0 * ell) + x0 * (l - ell - x0) + y0 * (l - ell - y0))
}

fn destination_denominator(l: f64, pos: Point) -> f64 {
    // 4L(x0+y0) − 4(x0²+y0²) — the common denominator of Eqs. 3–5 (the φ
    // form); the quadrant densities of Eq. 3 divide by L times this.
    4.0 * l * (pos.x + pos.y) - 4.0 * (pos.x * pos.x + pos.y * pos.y)
}

/// The Theorem 2 piecewise-constant density of the *continuous part* of
/// the destination distribution: the value of
/// `f_{(x0,y0)}(x, y)` for destinations in quadrant `q` around `pos`.
///
/// # Panics
///
/// Panics if `pos` is a corner of the square (the stationary distribution
/// puts zero mass there and the density is undefined).
pub fn destination_quadrant_density(l: f64, pos: Point, q: Quadrant) -> f64 {
    assert_side(l);
    let denom = l * destination_denominator(l, pos);
    assert!(
        denom > 0.0,
        "destination density undefined at square corners ({pos})"
    );
    let num = match q {
        Quadrant::Sw => 2.0 * l - pos.x - pos.y,
        Quadrant::Ne => pos.x + pos.y,
        Quadrant::Nw => l - pos.x + pos.y,
        Quadrant::Se => l + pos.x - pos.y,
    };
    num / denom
}

/// The probability that the destination lies in quadrant `q` around `pos`
/// (density times quadrant area).
pub fn quadrant_probability(l: f64, pos: Point, q: Quadrant) -> f64 {
    let area = match q {
        Quadrant::Sw => pos.x * pos.y,
        Quadrant::Se => (l - pos.x) * pos.y,
        Quadrant::Nw => pos.x * (l - pos.y),
        Quadrant::Ne => (l - pos.x) * (l - pos.y),
    };
    destination_quadrant_density(l, pos, q) * area
}

/// The `φ` probability (Eqs. 4–5) that the destination lies on the cross
/// segment in direction `dir` from `pos`.
///
/// `φ_N = φ_S = y0(L−y0) / (4L(x0+y0) − 4(x0²+y0²))` and symmetrically for
/// east/west with `x0`.
///
/// # Panics
///
/// Panics if `pos` is a corner of the square.
///
/// # Examples
///
/// ```
/// use fastflood_geom::{Cardinal, Point};
/// use fastflood_mobility::distributions::{cross_probability, phi_segment};
///
/// let l = 12.0;
/// let pos = Point::new(4.0, 3.0); // the paper's Fig. 1 uses (L/3, L/4)
/// let total: f64 = Cardinal::ALL.iter().map(|&d| phi_segment(l, pos, d)).sum();
/// assert!((total - 0.5).abs() < 1e-12); // the cross carries probability 1/2
/// assert!((cross_probability(l, pos) - 0.5).abs() < 1e-12);
/// ```
pub fn phi_segment(l: f64, pos: Point, dir: Cardinal) -> f64 {
    assert_side(l);
    let denom = destination_denominator(l, pos);
    assert!(denom > 0.0, "φ undefined at square corners ({pos})");
    match dir {
        Cardinal::North | Cardinal::South => pos.y * (l - pos.y) / denom,
        Cardinal::East | Cardinal::West => pos.x * (l - pos.x) / denom,
    }
}

/// Total probability that the destination lies on the cross centered at
/// `pos` — identically `1/2` (the paper notes this despite the cross
/// having zero area).
pub fn cross_probability(l: f64, pos: Point) -> f64 {
    Cardinal::ALL.iter().map(|&d| phi_segment(l, pos, d)).sum()
}

/// Draws a `Beta(2, 2)` variate as the median of three independent
/// uniforms on `[0, 1)` — the exact distribution, no rejection.
pub fn sample_beta22<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let (a, b, c) = (rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>());
    // median of three
    a.max(b).min(a.min(b).max(c))
}

/// Draws a position exactly from the Theorem 1 stationary spatial density.
///
/// Uses the mixture decomposition
/// `f(x, y) = ½·[β(x)·u(y)] + ½·[u(x)·β(y)]` where `β` is the scaled
/// `Beta(2, 2)` density `6t(L−t)/L³` and `u` the uniform density `1/L`.
///
/// # Examples
///
/// ```
/// use fastflood_mobility::distributions::sample_spatial;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let p = sample_spatial(100.0, &mut rng);
/// assert!((0.0..=100.0).contains(&p.x) && (0.0..=100.0).contains(&p.y));
/// ```
pub fn sample_spatial<R: Rng + ?Sized>(l: f64, rng: &mut R) -> Point {
    assert_side(l);
    let beta = l * sample_beta22(rng);
    let unif = l * rng.gen::<f64>();
    if rng.gen_bool(0.5) {
        Point::new(beta, unif)
    } else {
        Point::new(unif, beta)
    }
}

/// Draws a way-point pair `(w, d)` from the *length-biased* stationary
/// trip distribution: uniform pairs accepted with probability
/// `‖w − d‖₁ / (2L)`.
///
/// In a constant-speed way-point model the stationary probability of
/// observing a given trip is proportional to its duration, hence to its
/// length (the Palm-calculus construction of Le Boudec–Vojnović \[22\]).
/// Combined with a uniform position along the fair-coin-chosen L-path this
/// yields the exact stationary state; the Theorem 1/Theorem 2 experiments
/// validate that construction statistically.
pub fn sample_trip_length_biased<R: Rng + ?Sized>(l: f64, rng: &mut R) -> (Point, Point) {
    assert_side(l);
    loop {
        let w = Point::new(l * rng.gen::<f64>(), l * rng.gen::<f64>());
        let d = Point::new(l * rng.gen::<f64>(), l * rng.gen::<f64>());
        // ‖w−d‖₁ ≤ 2L, so len/(2L) is a valid acceptance probability;
        // the expected number of proposals is 3 (E‖w−d‖₁ = 2L/3).
        if rng.gen::<f64>() * 2.0 * l < w.manhattan(d) {
            return (w, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const L: f64 = 50.0;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn density_integrates_to_one() {
        // midpoint rule on a fine grid
        let k = 400;
        let h = L / k as f64;
        let mut sum = 0.0;
        for i in 0..k {
            for j in 0..k {
                let x = (i as f64 + 0.5) * h;
                let y = (j as f64 + 0.5) * h;
                sum += spatial_density(L, x, y) * h * h;
            }
        }
        assert!((sum - 1.0).abs() < 1e-5, "integral = {sum}");
    }

    #[test]
    fn density_zero_outside_and_at_corners() {
        assert_eq!(spatial_density(L, -1.0, 5.0), 0.0);
        assert_eq!(spatial_density(L, 5.0, L + 1.0), 0.0);
        assert_eq!(spatial_density(L, 0.0, 0.0), 0.0);
        assert!(spatial_density(L, L, L).abs() < 1e-15);
        // suburb (corner regions) is much thinner than the center
        let corner = spatial_density(L, L / 100.0, L / 100.0);
        let center = spatial_density(L, L / 2.0, L / 2.0);
        assert!(center > 10.0 * corner);
    }

    #[test]
    fn max_density_at_center() {
        let center = spatial_density(L, L / 2.0, L / 2.0);
        assert!((center - spatial_max_density(L)).abs() < 1e-15);
        for (x, y) in [(10.0, 20.0), (1.0, 1.0), (49.0, 25.0), (25.0, 40.0)] {
            assert!(spatial_density(L, x, y) <= spatial_max_density(L) + 1e-15);
        }
    }

    #[test]
    fn marginal_matches_density_integral() {
        // f_X(t) must equal ∫ f(t, y) dy
        for t in [1.0, 10.0, 25.0, 42.0] {
            let k = 20000;
            let h = L / k as f64;
            let num: f64 = (0..k)
                .map(|j| spatial_density(L, t, (j as f64 + 0.5) * h) * h)
                .sum();
            let ana = spatial_marginal_density(L, t);
            assert!((num - ana).abs() < 1e-6, "marginal at {t}: {num} vs {ana}");
        }
    }

    #[test]
    fn marginal_cdf_is_derivative_consistent() {
        // CDF' = density (finite differences)
        for t in [5.0, 20.0, 30.0, 45.0] {
            let h = 1e-5;
            let deriv =
                (spatial_marginal_cdf(L, t + h) - spatial_marginal_cdf(L, t - h)) / (2.0 * h);
            assert!((deriv - spatial_marginal_density(L, t)).abs() < 1e-6);
        }
        assert_eq!(spatial_marginal_cdf(L, -3.0), 0.0);
        assert_eq!(spatial_marginal_cdf(L, L + 3.0), 1.0);
    }

    #[test]
    fn rect_mass_full_region_is_one() {
        let full = Rect::square(L).unwrap();
        assert!((rect_mass(L, &full) - 1.0).abs() < 1e-12);
        // disjoint rect has zero mass
        let outside = Rect::new(Point::new(L + 1.0, 0.0), Point::new(L + 2.0, 1.0)).unwrap();
        assert_eq!(rect_mass(L, &outside), 0.0);
        // clipping: rect extending past the region counts only the inside
        let straddling =
            Rect::new(Point::new(L / 2.0, -10.0), Point::new(L + 10.0, L + 10.0)).unwrap();
        let inside = Rect::new(Point::new(L / 2.0, 0.0), Point::new(L, L)).unwrap();
        assert!((rect_mass(L, &straddling) - rect_mass(L, &inside)).abs() < 1e-12);
    }

    #[test]
    fn rect_mass_additivity() {
        let left = Rect::new(Point::new(0.0, 0.0), Point::new(20.0, L)).unwrap();
        let right = Rect::new(Point::new(20.0, 0.0), Point::new(L, L)).unwrap();
        let total = rect_mass(L, &left) + rect_mass(L, &right);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn obs5_matches_exact_integral() {
        for (x0, y0, ell) in [
            (0.0, 0.0, 5.0),
            (10.0, 20.0, 2.5),
            (40.0, 40.0, 10.0),
            (3.3, 44.7, 1.7),
        ] {
            let rect = Rect::new(Point::new(x0, y0), Point::new(x0 + ell, y0 + ell)).unwrap();
            let exact = rect_mass(L, &rect);
            let obs5 = cell_mass_obs5(L, ell, x0, y0);
            assert!(
                (exact - obs5).abs() < 1e-12,
                "Obs. 5 mismatch at ({x0}, {y0}) side {ell}: {exact} vs {obs5}"
            );
        }
    }

    #[test]
    fn obs5_lower_bound_holds() {
        // Obs. 5: cell mass >= ℓ³(3L−2ℓ)/L⁴ for any cell inside the region
        let ell = 4.0_f64;
        let bound = ell.powi(3) * (3.0 * L - 2.0 * ell) / L.powi(4);
        for x0 in [0.0, 10.0, 46.0] {
            for y0 in [0.0, 23.0, 46.0] {
                assert!(cell_mass_obs5(L, ell, x0, y0) >= bound - 1e-12);
            }
        }
    }

    #[test]
    fn destination_masses_sum_to_one() {
        for pos in [
            Point::new(L / 3.0, L / 4.0),
            Point::new(1.0, 1.0),
            Point::new(L - 0.5, L / 2.0),
            Point::new(25.0, 25.0),
        ] {
            let quadrants: f64 = Quadrant::ALL
                .iter()
                .map(|&q| quadrant_probability(L, pos, q))
                .sum();
            let cross = cross_probability(L, pos);
            assert!(
                (quadrants + cross - 1.0).abs() < 1e-12,
                "total mass at {pos}: {} + {}",
                quadrants,
                cross
            );
            assert!(
                (cross - 0.5).abs() < 1e-12,
                "cross mass must be exactly 1/2"
            );
        }
    }

    #[test]
    fn phi_symmetries() {
        let pos = Point::new(L / 3.0, L / 4.0);
        assert_eq!(
            phi_segment(L, pos, Cardinal::North),
            phi_segment(L, pos, Cardinal::South)
        );
        assert_eq!(
            phi_segment(L, pos, Cardinal::East),
            phi_segment(L, pos, Cardinal::West)
        );
        // x0 < y0 would flip the relation; here y0 = L/4 < x0 = L/3 so the
        // vertical segments (length governed by y0(L−y0)) carry less mass
        assert!(phi_segment(L, pos, Cardinal::North) < phi_segment(L, pos, Cardinal::East));
    }

    #[test]
    #[should_panic(expected = "corners")]
    fn phi_undefined_at_corner() {
        phi_segment(L, Point::new(0.0, 0.0), Cardinal::North);
    }

    #[test]
    fn quadrant_classify() {
        let pos = Point::new(10.0, 10.0);
        assert_eq!(
            Quadrant::classify(pos, Point::new(5.0, 5.0)),
            Some(Quadrant::Sw)
        );
        assert_eq!(
            Quadrant::classify(pos, Point::new(15.0, 5.0)),
            Some(Quadrant::Se)
        );
        assert_eq!(
            Quadrant::classify(pos, Point::new(5.0, 15.0)),
            Some(Quadrant::Nw)
        );
        assert_eq!(
            Quadrant::classify(pos, Point::new(15.0, 15.0)),
            Some(Quadrant::Ne)
        );
        assert_eq!(Quadrant::classify(pos, Point::new(10.0, 15.0)), None);
        assert_eq!(Quadrant::classify(pos, Point::new(5.0, 10.0)), None);
    }

    #[test]
    fn beta22_moments() {
        let mut r = rng(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_beta22(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // Beta(2,2): mean 1/2, variance 1/20
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 0.05).abs() < 0.003, "var {var}");
    }

    #[test]
    fn sample_spatial_matches_density_coarsely() {
        let mut r = rng(2);
        let n = 100_000usize;
        // count samples in center box vs corner box of equal area
        let center = Rect::new(Point::new(20.0, 20.0), Point::new(30.0, 30.0)).unwrap();
        let corner = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let (mut in_center, mut in_corner) = (0usize, 0usize);
        for _ in 0..n {
            let p = sample_spatial(L, &mut r);
            assert!((0.0..=L).contains(&p.x) && (0.0..=L).contains(&p.y));
            if center.contains(p) {
                in_center += 1;
            }
            if corner.contains(p) {
                in_corner += 1;
            }
        }
        let expected_center = rect_mass(L, &center);
        let expected_corner = rect_mass(L, &corner);
        let got_center = in_center as f64 / n as f64;
        let got_corner = in_corner as f64 / n as f64;
        assert!((got_center - expected_center).abs() < 0.005);
        assert!((got_corner - expected_corner).abs() < 0.005);
        // the paper's Fig. 1 shape: center much denser than corner
        // (analytically the ratio of these two boxes at L = 50 is 2.85)
        assert!(got_center > 2.5 * got_corner);
    }

    #[test]
    fn length_biased_trips_are_longer_on_average() {
        let mut r = rng(3);
        let n = 50_000;
        let biased: f64 = (0..n)
            .map(|_| {
                let (w, d) = sample_trip_length_biased(L, &mut r);
                assert!((0.0..=L).contains(&w.x) && (0.0..=L).contains(&d.y));
                w.manhattan(d)
            })
            .sum::<f64>()
            / n as f64;
        let uniform: f64 = (0..n)
            .map(|_| {
                let w = Point::new(L * r.gen::<f64>(), L * r.gen::<f64>());
                let d = Point::new(L * r.gen::<f64>(), L * r.gen::<f64>());
                w.manhattan(d)
            })
            .sum::<f64>()
            / n as f64;
        // E[uniform] = 2L/3; length bias raises the mean to E[len²]/E[len]
        assert!((uniform - 2.0 * L / 3.0).abs() < L * 0.01);
        assert!(
            biased > uniform * 1.05,
            "biased {biased} vs uniform {uniform}"
        );
    }
}
