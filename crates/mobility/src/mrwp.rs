//! The Manhattan Random Way-Point mobility model (paper §2).

use crate::distributions::{sample_spatial, sample_trip_length_biased};
use crate::model::{drain_chunks, move_chunk_count, ChunkCtx, MOVE_CHUNK};
use crate::snapshot::{ByteReader, ByteWriter, SnapshotState};
use crate::{Mobility, MobilityError, StepEvents};
use fastflood_geom::{Axis, LPath, Point, Rect};
use fastflood_parallel::{run_chunks6, WorkerPool};
use rand::Rng;
use std::time::Instant;

/// The Manhattan Random Way-Point model.
///
/// Each agent repeatedly:
///
/// 1. selects a destination uniformly at random in the square `[0, L]²`;
/// 2. flips a fair coin between the two Manhattan shortest paths
///    (`P1` vertical-first, `P2` horizontal-first);
/// 3. travels the chosen L-path at constant speed `v`;
/// 4. on arrival, repeats.
///
/// [`Mrwp::init_stationary`] performs *perfect simulation*: it draws the
/// agent state directly from the stationary regime via length-biased trip
/// sampling, so experiments need no warm-up phase. The resulting spatial
/// marginal is the Theorem 1 density (validated statistically in the test
/// suite and experiment E1/E3).
///
/// # Examples
///
/// ```
/// use fastflood_mobility::{Mobility, Mrwp};
/// use rand::SeedableRng;
///
/// let model = Mrwp::new(100.0, 2.0)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut st = model.init_stationary(&mut rng);
/// for _ in 0..50 {
///     model.step(&mut st, &mut rng);
///     let p = model.position(&st);
///     assert!(model.region().contains(p));
/// }
/// # Ok::<(), fastflood_mobility::MobilityError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Mrwp {
    side: f64,
    speed: f64,
    /// Whole time steps spent paused at each way-point (0 in the paper).
    pause: u32,
}

/// Trajectory state of one MRWP agent: the current L-path and the
/// arc-length progress along it.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MrwpState {
    path: LPath,
    /// Arc-length position along `path`, in `[0, path.len()]`.
    s: f64,
    /// Remaining pause steps at the current way-point (0 = traveling).
    pause_left: u32,
    /// Leg cache for the fused [`Mobility::step_from`] fast path: while
    /// `s + speed < leg_end` a step is `position += (vx, vy)`. Negative
    /// when invalid (fresh state, pause, or leg boundary ahead), which
    /// routes the next step through the full logic that refreshes it.
    leg_end: f64,
    /// Per-step displacement on the current leg (`±speed` on one axis).
    vx: f64,
    vy: f64,
}

/// Equality over the observable trajectory only — the `step_from` leg
/// cache is an implementation detail whose warm/cold status depends on
/// which stepping entry point was used last.
impl PartialEq for MrwpState {
    fn eq(&self, other: &MrwpState) -> bool {
        self.path == other.path && self.s == other.s && self.pause_left == other.pause_left
    }
}

impl MrwpState {
    fn new(path: LPath, s: f64, pause_left: u32) -> MrwpState {
        MrwpState {
            path,
            s,
            pause_left,
            leg_end: -1.0,
            vx: 0.0,
            vy: 0.0,
        }
    }
}

impl MrwpState {
    /// The current trip's L-path.
    pub fn path(&self) -> &LPath {
        &self.path
    }

    /// Arc-length progress along the current path.
    pub fn progress(&self) -> f64 {
        self.s
    }

    /// The current trip destination.
    pub fn dest(&self) -> Point {
        self.path.dest()
    }

    /// Whether the agent is on the second leg of its path (traveling
    /// straight toward a destination on its own axis line — the situation
    /// whose stationary probability is the paper's "cross mass 1/2").
    pub fn on_second_leg(&self) -> bool {
        match self.path.turn_at() {
            Some(t) => self.s >= t,
            // single-leg paths count as second leg: destination dead ahead
            None => true,
        }
    }

    /// Whether the agent is currently pausing at a way-point.
    pub fn is_paused(&self) -> bool {
        self.pause_left > 0
    }
}

impl SnapshotState for MrwpState {
    const STATE_TAG: u32 = u32::from_le_bytes(*b"MRWP");

    /// Layout: path (start, dest, first_axis), `s`, `pause_left`, then
    /// the `step_from` leg cache (`leg_end`, `vx`, `vy`). The cache is
    /// serialized — not recomputed — because its warm/cold status
    /// determines which stepping branch the next step takes, and a
    /// bitwise resume must take the identical branch.
    fn write_state(&self, w: &mut ByteWriter) {
        w.put_point(self.path.start());
        w.put_point(self.path.dest());
        w.put_axis(self.path.first_axis());
        w.put_f64(self.s);
        w.put_u32(self.pause_left);
        w.put_f64(self.leg_end);
        w.put_f64(self.vx);
        w.put_f64(self.vy);
    }

    fn read_state(r: &mut ByteReader<'_>) -> Option<MrwpState> {
        let start = r.get_point()?;
        let dest = r.get_point()?;
        let axis = r.get_axis()?;
        // corner/leg lengths are a pure function of the endpoints: rebuilt
        let path = LPath::new(start, dest, axis);
        Some(MrwpState {
            path,
            s: r.get_f64()?,
            pause_left: r.get_u32()?,
            leg_end: r.get_f64()?,
            vx: r.get_f64()?,
            vy: r.get_f64()?,
        })
    }
}

/// Axis-aligned unit step directions of an L-path leg, indexed by the
/// hot `dir` lane of [`MrwpBatch`]; entry 4 is the degenerate
/// zero-length leg. The default advance kernel and the scalar state
/// views decode through this table; the `simd` kernel variant
/// reconstitutes the same values branch-free from the code.
const DIR_STEPS: [(f64, f64); 5] = [(1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0), (0.0, 0.0)];

/// Encodes a leg-cache step vector (each component `±speed` or `0.0`)
/// as a [`DIR_STEPS`] index.
fn dir_code(vx: f64, vy: f64) -> u32 {
    if vx > 0.0 {
        0
    } else if vx < 0.0 {
        1
    } else if vy > 0.0 {
        2
    } else if vy < 0.0 {
        3
    } else {
        4
    }
}

/// Cold per-agent state: the trip geometry and pause counter, touched
/// only at leg boundaries, way-point rollovers, and pauses — a few
/// agents per step in the MRWP speed regime.
#[derive(Debug, Clone, Copy)]
struct MrwpCold {
    path: LPath,
    /// Remaining pause steps at the current way-point (0 = traveling).
    pause_left: u32,
}

/// The whole MRWP population in the batched hot/cold split-layout form
/// of [`Mobility::step_batch`] (built by [`Mobility::batch_from_states`]).
///
/// The hot/cold split of PR 4/5 (24 bytes of per-step-touched state per
/// agent, cold trip geometry in a side array) is here taken to full
/// structure-of-arrays form: three dense hot **lanes** (`s`, `leg_end`,
/// `dir` — progress, fused leg-cache guard, direction code) plus a
/// per-step boundary-index scratch lane, and the cold side array (trip
/// geometry, pause counter) read only when an agent hits a leg
/// boundary. The common full-leg step therefore streams flat `f64`/
/// `u32` lanes instead of the ~100-byte [`MrwpState`], which is what
/// makes the dense-regime move pass cache-bound rather than
/// stride-bound — and, since PR 6, lets the advance kernel stream the
/// hot lanes in one flat pass that compacts all leg-boundary work out
/// into an index list for the scalar boundary pass (see
/// `docs/ARCHITECTURE.md`, "Move pass & state layout").
///
/// # Examples
///
/// ```
/// use fastflood_mobility::{Mobility, Mrwp};
/// use fastflood_geom::Point;
/// use rand::SeedableRng;
///
/// let model = Mrwp::new(50.0, 0.5)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let states: Vec<_> = (0..4).map(|_| model.init_stationary(&mut rng)).collect();
/// let mut positions: Vec<Point> = states.iter().map(|s| model.position(s)).collect();
/// let mut batch = model.batch_from_states(states);
/// let drift = model.step_batch(&mut batch, &mut positions, &mut rng, |_, _| {});
/// // the measured drift bounds every agent's step displacement
/// assert!(drift <= 0.5 + 1e-12);
/// # Ok::<(), fastflood_mobility::MobilityError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MrwpBatch {
    /// Hot lane: arc-length progress along the current path.
    s: Vec<f64>,
    /// Hot lane, fast-path guard: while `s + speed < leg_end` a step is
    /// `position += DIR_STEPS[dir] · speed`. Negative when invalid
    /// (pause or leg boundary ahead), routing the agent through the
    /// boundary pass.
    leg_end: Vec<f64>,
    /// Hot lane: direction code of the current leg ([`DIR_STEPS`] index).
    dir: Vec<u32>,
    /// Per-step scratch written by the advance kernel: the (ascending,
    /// slice-local) indices of the agents that hit their leg end (or
    /// were already invalid) and must be finished by the scalar
    /// boundary pass, compacted into the prefix `flagged[..count]`.
    /// The pass therefore touches only flagged agents instead of
    /// re-scanning the whole population. Never read across steps.
    flagged: Vec<u32>,
    cold: Vec<MrwpCold>,
    /// Whether steps record the kernel/boundary time split below.
    timing: bool,
    /// Nanoseconds the last step spent in the advance kernel (summed
    /// over chunks in chunked mode; 0 unless `timing`).
    kernel_ns: u64,
    /// Nanoseconds the last step spent in the boundary pass.
    boundary_ns: u64,
}

impl MrwpBatch {
    /// Number of agents in the batch.
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// Whether the batch holds no agents.
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }
}

impl Mrwp {
    /// Creates the model over `[0, side]²` with per-step travel distance
    /// `speed`.
    ///
    /// # Errors
    ///
    /// * [`MobilityError::BadSide`] — `side` not strictly positive/finite;
    /// * [`MobilityError::BadSpeed`] — `speed` negative or not finite.
    pub fn new(side: f64, speed: f64) -> Result<Mrwp, MobilityError> {
        if side <= 0.0 || !side.is_finite() {
            return Err(MobilityError::BadSide(side));
        }
        if speed < 0.0 || !speed.is_finite() {
            return Err(MobilityError::BadSpeed(speed));
        }
        Ok(Mrwp {
            side,
            speed,
            pause: 0,
        })
    }

    /// Returns a copy that pauses `steps` whole time steps at every
    /// way-point (the classic RWP "think time"; the paper's model has
    /// none). During a pause the agent does not move or turn; leftover
    /// travel budget in the arrival step is forfeited.
    pub fn with_pause(mut self, steps: u32) -> Mrwp {
        self.pause = steps;
        self
    }

    /// Side length `L` of the region.
    #[inline]
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Pause duration at way-points, in steps.
    #[inline]
    pub fn pause(&self) -> u32 {
        self.pause
    }

    /// Draws a position from the exact Theorem 1 stationary spatial
    /// density without constructing trajectory state (useful for
    /// snapshot-only studies such as the connectivity experiments).
    pub fn sample_stationary_position<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        sample_spatial(self.side, rng)
    }

    fn fresh_trip<R: Rng + ?Sized>(&self, from: Point, rng: &mut R) -> LPath {
        let dest = Point::new(self.side * rng.gen::<f64>(), self.side * rng.gen::<f64>());
        let axis = if rng.gen_bool(0.5) { Axis::Y } else { Axis::X };
        LPath::new(from, dest, axis)
    }
}

impl Mobility for Mrwp {
    type State = MrwpState;
    /// Hot/cold split batch: see [`MrwpBatch`].
    type Batch = MrwpBatch;

    fn region(&self) -> Rect {
        Rect::square(self.side).expect("validated side")
    }

    fn speed(&self) -> f64 {
        self.speed
    }

    fn init_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> MrwpState {
        if self.pause == 0 || self.speed == 0.0 {
            let (w, d) = sample_trip_length_biased(self.side, rng);
            let axis = if rng.gen_bool(0.5) { Axis::Y } else { Axis::X };
            let path = LPath::new(w, d, axis);
            let s = rng.gen::<f64>() * path.len();
            return MrwpState::new(path, s, 0);
        }
        // With pauses, a renewal cycle lasts len/v + pause steps; sample
        // cycles duration-biased, then place the agent uniformly in time
        // within the cycle (traveling or paused at the destination).
        let l = self.side;
        let max_duration = 2.0 * l / self.speed + self.pause as f64;
        loop {
            let w = Point::new(l * rng.gen::<f64>(), l * rng.gen::<f64>());
            let d = Point::new(l * rng.gen::<f64>(), l * rng.gen::<f64>());
            let len = w.manhattan(d);
            let duration = len / self.speed + self.pause as f64;
            if rng.gen::<f64>() * max_duration >= duration {
                continue;
            }
            if rng.gen::<f64>() * duration < self.pause as f64 {
                // paused at the destination, uniformly into the pause
                return MrwpState::new(
                    LPath::new(d, d, Axis::X),
                    0.0,
                    rng.gen_range(1..=self.pause),
                );
            }
            let axis = if rng.gen_bool(0.5) { Axis::Y } else { Axis::X };
            let path = LPath::new(w, d, axis);
            let s = rng.gen::<f64>() * path.len();
            return MrwpState::new(path, s, 0);
        }
    }

    fn init_at<R: Rng + ?Sized>(&self, pos: Point, rng: &mut R) -> MrwpState {
        assert!(
            self.region().contains(pos),
            "initial position {pos} outside the region"
        );
        MrwpState::new(self.fresh_trip(pos, rng), 0.0, 0)
    }

    fn position(&self, state: &MrwpState) -> Point {
        state.path.point_at(state.s)
    }

    fn step<R: Rng + ?Sized>(&self, state: &mut MrwpState, rng: &mut R) -> StepEvents {
        // a direct step() bypasses the fused fast path; invalidate its
        // cache so a later step_from cannot move along stale geometry
        state.leg_end = -1.0;
        self.step_core(&mut state.path, &mut state.s, &mut state.pause_left, rng)
    }

    #[inline]
    fn step_from<R: Rng + ?Sized>(
        &self,
        state: &mut MrwpState,
        current: Point,
        rng: &mut R,
    ) -> (Point, StepEvents) {
        // Fast path for the overwhelmingly common step: traveling, and
        // the whole step stays strictly inside the current leg. Motion is
        // then a single precomputed vector add — no corner, no arrival,
        // no arc-length-to-point conversion. `leg_end < 0` (fresh state
        // or pause) fails the guard and takes the full path below.
        let s_new = state.s + self.speed;
        if s_new < state.leg_end {
            state.s = s_new;
            return (
                Point::new(current.x + state.vx, current.y + state.vy),
                StepEvents::default(),
            );
        }
        // corner, arrival, pause, or degenerate cases: full step logic,
        // then refresh the leg cache for the steps that follow
        let ev = self.step(state, rng);
        self.refresh_leg_cache(state);
        (self.position(state), ev)
    }

    fn batch_from_states(&self, states: Vec<MrwpState>) -> MrwpBatch {
        let n = states.len();
        let mut batch = MrwpBatch {
            s: Vec::with_capacity(n),
            leg_end: Vec::with_capacity(n),
            dir: Vec::with_capacity(n),
            flagged: vec![0; n],
            cold: Vec::with_capacity(n),
            timing: false,
            kernel_ns: 0,
            boundary_ns: 0,
        };
        for st in states {
            batch.s.push(st.s);
            batch.leg_end.push(st.leg_end);
            batch.dir.push(dir_code(st.vx, st.vy));
            batch.cold.push(MrwpCold {
                path: st.path,
                pause_left: st.pause_left,
            });
        }
        batch
    }

    fn batch_state(&self, batch: &MrwpBatch, agent: usize) -> MrwpState {
        let c = batch.cold[agent];
        let (ux, uy) = DIR_STEPS[batch.dir[agent] as usize];
        MrwpState {
            path: c.path,
            s: batch.s[agent],
            pause_left: c.pause_left,
            leg_end: batch.leg_end[agent],
            vx: ux * self.speed,
            vy: uy * self.speed,
        }
    }

    fn batch_set_state(&self, batch: &mut MrwpBatch, agent: usize, state: MrwpState) {
        batch.s[agent] = state.s;
        batch.leg_end[agent] = state.leg_end;
        batch.dir[agent] = dir_code(state.vx, state.vy);
        batch.cold[agent] = MrwpCold {
            path: state.path,
            pause_left: state.pause_left,
        };
    }

    fn step_batch<R: Rng + ?Sized, F: FnMut(usize, StepEvents)>(
        &self,
        batch: &mut MrwpBatch,
        positions: &mut [Point],
        rng: &mut R,
        on_events: F,
    ) -> f64 {
        assert_eq!(
            batch.s.len(),
            positions.len(),
            "batch and position array must agree on the population size"
        );
        debug_assert_eq!(batch.s.len(), batch.cold.len());
        let MrwpBatch {
            s,
            leg_end,
            dir,
            flagged,
            cold,
            timing,
            kernel_ns,
            boundary_ns,
        } = batch;
        let (drift, k_ns, b_ns) = self.step_batch_slices(
            s, leg_end, dir, flagged, cold, positions, 0, *timing, rng, on_events,
        );
        *kernel_ns = k_ns;
        *boundary_ns = b_ns;
        drift
    }

    fn enable_move_timing(&self, batch: &mut MrwpBatch, on: bool) {
        batch.timing = on;
        if !on {
            batch.kernel_ns = 0;
            batch.boundary_ns = 0;
        }
    }

    fn move_split_nanos(&self, batch: &MrwpBatch) -> Option<(u64, u64)> {
        batch.timing.then_some((batch.kernel_ns, batch.boundary_ns))
    }

    fn step_batch_chunked<R: Rng + Send, F: FnMut(usize, StepEvents)>(
        &self,
        batch: &mut MrwpBatch,
        positions: &mut [Point],
        chunks: &mut [ChunkCtx<R>],
        pool: &WorkerPool,
        on_events: F,
    ) -> f64 {
        assert_eq!(
            batch.s.len(),
            positions.len(),
            "batch and position array must agree on the population size"
        );
        debug_assert_eq!(batch.s.len(), batch.cold.len());
        assert_eq!(
            chunks.len(),
            move_chunk_count(positions.len()),
            "one context per move chunk"
        );
        let MrwpBatch {
            s,
            leg_end,
            dir,
            flagged,
            cold,
            timing,
            kernel_ns,
            boundary_ns,
        } = batch;
        let timing = *timing;
        run_chunks6(
            pool,
            MOVE_CHUNK,
            s,
            leg_end,
            dir,
            flagged,
            cold,
            positions,
            chunks,
            |ci, s_part, le_part, dir_part, fl_part, cold_part, pos_part, ctx| {
                ctx.begin();
                let base = ci * MOVE_CHUNK;
                let ChunkCtx {
                    rng,
                    drift,
                    events,
                    kernel_ns,
                    boundary_ns,
                } = ctx;
                let (d, k_ns, b_ns) = self.step_batch_slices(
                    s_part,
                    le_part,
                    dir_part,
                    fl_part,
                    cold_part,
                    pos_part,
                    base,
                    timing,
                    rng,
                    |i, ev| {
                        events.push((i as u32, ev));
                    },
                );
                *drift = d;
                *kernel_ns = k_ns;
                *boundary_ns = b_ns;
            },
        );
        *kernel_ns = chunks.iter().map(|c| c.kernel_ns).sum();
        *boundary_ns = chunks.iter().map(|c| c.boundary_ns).sum();
        drain_chunks(chunks, on_events)
    }
}

/// The advance kernel over one slice of the hot lanes: integrates every
/// agent whose whole step stays strictly inside its current leg,
/// compacts the (ascending, slice-local) indices of the rest into the
/// prefix of `flagged`, and returns how many it flagged. This is the
/// entire move pass for in-leg agents — no RNG, no cold state, a flat
/// streaming pass over the lanes — and the index compaction means the
/// boundary pass that follows never re-scans the population.
///
/// Default build: one well-predicted branch per agent (in the MRWP
/// speed regime ≥97% of agents take it the same way) with the
/// [`DIR_STEPS`] table decode — on a baseline scalar target this beats
/// every branch-free formulation we measured, because the predictor
/// makes the common case free while selects/masks pay their full
/// latency on every lane. The explicit-wide masked variant lives
/// behind the `simd` feature for builds with real vector ISAs.
#[cfg(not(feature = "simd"))]
fn advance_kernel(
    speed: f64,
    s: &mut [f64],
    leg_end: &[f64],
    dir: &[u32],
    flagged: &mut [u32],
    positions: &mut [Point],
) -> usize {
    let n = s.len();
    assert!(
        leg_end.len() == n && dir.len() == n && flagged.len() == n && positions.len() == n,
        "hot lanes must agree on length"
    );
    let mut boundary = 0usize;
    for i in 0..n {
        let s_new = s[i] + speed;
        if s_new < leg_end[i] {
            s[i] = s_new;
            let (ux, uy) = DIR_STEPS[dir[i] as usize];
            positions[i].x += ux * speed;
            positions[i].y += uy * speed;
        } else {
            flagged[boundary] = i as u32;
            boundary += 1;
        }
    }
    boundary
}

/// Explicit-wide variant of the advance kernel (`simd` feature): fixed
/// 4-lane blocks in branch-free masked-multiply form with a scalar
/// tail, a shape the SLP vectorizer packs into vector registers on
/// stable Rust (the portable `core::simd` API is still nightly-only).
///
/// Per lane, with `m ∈ {0.0, 1.0}` the in-leg mask: `s += speed·m` and
/// `pos += (sx·speed·m, sy·speed·m)`, where `sx = (dir==0) − (dir==1)`
/// and `sy = (dir==2) − (dir==3)` reconstitute exactly the
/// [`DIR_STEPS`] components. Bitwise identity with the branchy kernel:
/// on in-leg lanes (`m = 1.0`) the products are the same `±speed`/
/// `0.0·speed` values the table decode yields; on flagged lanes
/// (`m = 0.0`) the masked adds contribute `±0.0`, which is
/// bit-preserving for every value these lanes can hold (`s` and both
/// coordinates are built exclusively from non-negative arithmetic, so
/// `-0.0` never occurs) — and the boundary pass then overwrites the
/// flagged lanes entirely anyway. Flagged indices are compacted with a
/// branch-free unconditional store (`flagged[count] = i; count += f`),
/// so the block body stays free of unpredictable control flow. The
/// lockstep suite re-runs under this feature in CI to enforce the
/// identity.
#[cfg(feature = "simd")]
fn advance_kernel(
    speed: f64,
    s: &mut [f64],
    leg_end: &[f64],
    dir: &[u32],
    flagged: &mut [u32],
    positions: &mut [Point],
) -> usize {
    const W: usize = 4;
    let n = s.len();
    assert!(
        leg_end.len() == n && dir.len() == n && flagged.len() == n && positions.len() == n,
        "hot lanes must agree on length"
    );
    let blocks = n / W * W;
    let mut boundary = 0usize;
    let mut i = 0;
    while i < blocks {
        let mut m = [0.0f64; W];
        for k in 0..W {
            m[k] = ((s[i + k] + speed) < leg_end[i + k]) as u32 as f64;
        }
        for k in 0..W {
            let sm = speed * m[k];
            let d = dir[i + k];
            let sx = (d == 0) as u32 as f64 - (d == 1) as u32 as f64;
            let sy = (d == 2) as u32 as f64 - (d == 3) as u32 as f64;
            s[i + k] += sm;
            positions[i + k].x += sx * sm;
            positions[i + k].y += sy * sm;
        }
        for (k, &mk) in m.iter().enumerate() {
            flagged[boundary] = (i + k) as u32;
            boundary += (mk == 0.0) as usize;
        }
        i += W;
    }
    while i < n {
        let s_new = s[i] + speed;
        if s_new < leg_end[i] {
            s[i] = s_new;
            let (ux, uy) = DIR_STEPS[dir[i] as usize];
            positions[i].x += ux * speed;
            positions[i].y += uy * speed;
        } else {
            flagged[boundary] = i as u32;
            boundary += 1;
        }
        i += 1;
    }
    boundary
}

impl Mrwp {
    /// The batched move pass over a slice of the hot-lane/cold/position
    /// arrays: the whole-population body of [`Mobility::step_batch`]
    /// (`base == 0`, full slices) and the per-chunk task of
    /// [`Mobility::step_batch_chunked`] (`base == chunk · MOVE_CHUNK`)
    /// share this one function, so the two entry points can never drift
    /// apart.
    ///
    /// Two sub-passes: the flat [`advance_kernel`] integrates every
    /// in-leg agent and compacts the indices of the rest into
    /// `flagged[..count]`, then the scalar **boundary pass** walks that
    /// prefix and runs the full step logic (RNG draws, leg-cache
    /// refill, arc-length-to-point conversion) for flagged agents only
    /// — it never re-scans the population. Because flagged agents'
    /// lanes are left meaningfully untouched by the kernel and the
    /// compacted indices are in ascending order, the RNG draw sequence
    /// — and hence every trajectory and event — is bitwise-identical to
    /// the old interleaved per-agent loop and to a scalar `step_from`
    /// loop.
    /// Records events through `record` with **global** agent indices;
    /// returns `(measured drift, kernel_ns, boundary_ns)` (the timings
    /// are 0 unless `timing`).
    #[allow(clippy::too_many_arguments)]
    fn step_batch_slices<R: Rng + ?Sized>(
        &self,
        s: &mut [f64],
        leg_end: &mut [f64],
        dir: &mut [u32],
        flagged: &mut [u32],
        cold: &mut [MrwpCold],
        positions: &mut [Point],
        base: usize,
        timing: bool,
        rng: &mut R,
        mut record: impl FnMut(usize, StepEvents),
    ) -> (f64, u64, u64) {
        let speed = self.speed;
        let t0 = timing.then(Instant::now);
        let count = advance_kernel(speed, s, leg_end, dir, flagged, positions);
        let kernel_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        // Measured drift, split by sub-pass: a fused leg step displaces
        // by exactly `speed` (one axis, |v| = speed), so the kernel only
        // needs the "any in-leg agent" bit; boundary-pass displacements
        // (corner/arrival carryover, pauses) are measured individually
        // and can only be shorter in L2 than the L1 budget.
        let any_leg_step = count < s.len();
        let mut slow_max2 = 0.0f64;
        let t1 = timing.then(Instant::now);
        for &iu in flagged[..count].iter() {
            let i = iu as usize;
            // identical to the scalar `step_from` fallback — full
            // step logic on the cold state, leg-cache refill,
            // arc-length-to-point conversion
            let c = &mut cold[i];
            let ev = self.step_core(&mut c.path, &mut s[i], &mut c.pause_left, rng);
            let (le, vx, vy) = self.leg_cache(&c.path, s[i], c.pause_left);
            leg_end[i] = le;
            dir[i] = dir_code(vx, vy);
            let before = positions[i];
            let p = c.path.point_at(s[i]);
            positions[i] = p;
            let dx = p.x - before.x;
            let dy = p.y - before.y;
            let d2 = dx * dx + dy * dy;
            if d2 > slow_max2 {
                slow_max2 = d2;
            }
            if ev.turns | ev.arrivals != 0 {
                record(base + i, ev);
            }
        }
        let boundary_ns = t1.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let slow = slow_max2.sqrt();
        let drift = if any_leg_step && speed > slow {
            speed
        } else {
            slow
        };
        (drift, kernel_ns, boundary_ns)
    }

    /// The authoritative one-step logic over the `(path, s, pause_left)`
    /// parts of an agent's state, shared verbatim by the scalar
    /// [`Mobility::step`]/[`Mobility::step_from`] entry points and the
    /// slow path of the batched [`Mobility::step_batch`] — one body, so
    /// the three paths can never drift apart in semantics or RNG draws.
    fn step_core<R: Rng + ?Sized>(
        &self,
        path: &mut LPath,
        s: &mut f64,
        pause_left: &mut u32,
        rng: &mut R,
    ) -> StepEvents {
        if *pause_left > 0 {
            *pause_left -= 1;
            if *pause_left == 0 {
                // the pause ends at this step's boundary; travel resumes
                // next step on a fresh trip
                let from = path.dest();
                *path = self.fresh_trip(from, rng);
                *s = 0.0;
            }
            return StepEvents::default();
        }
        let mut budget = self.speed;
        let mut events = StepEvents::default();
        // Carry leftover budget across corners and arrivals so the agent
        // travels exactly `speed` per step (continuous trajectory sampled
        // at integer times). The loop is bounded: every iteration but the
        // last consumes a full trip, and a fresh trip has positive length
        // with probability one (a zero-length trip is resampled, counted,
        // and capped to keep the step total).
        let mut guard = 0;
        loop {
            let remaining = path.remaining(*s);
            if budget < remaining {
                let before = *s;
                *s += budget;
                if let Some(t) = path.turn_at() {
                    if before < t && *s >= t {
                        events.turns += 1;
                    }
                }
                break;
            }
            // the step finishes this trip: account for a corner still ahead
            if let Some(t) = path.turn_at() {
                if *s < t {
                    events.turns += 1;
                }
            }
            budget -= remaining;
            events.arrivals += 1;
            let from = path.dest();
            if self.pause > 0 {
                // hold position for `pause` whole steps; leftover budget
                // in the arrival step is forfeited
                *path = LPath::new(from, from, Axis::X);
                *s = 0.0;
                *pause_left = self.pause;
                break;
            }
            *path = self.fresh_trip(from, rng);
            *s = 0.0;
            guard += 1;
            if guard > 10_000 {
                // astronomically unlikely (requires thousands of
                // zero-length trips or speed >> L); stop at the waypoint
                break;
            }
        }
        events
    }

    /// Computes the fused fast-path cache `(leg_end, vx, vy)` from the
    /// authoritative `(path, s, pause_left)` parts: while
    /// `s + speed < leg_end` a step is `position += (vx, vy)`. Shared by
    /// the scalar cache refresh and the batched hot-array refill.
    fn leg_cache(&self, path: &LPath, s: f64, pause_left: u32) -> (f64, f64, f64) {
        if pause_left > 0 || self.speed == 0.0 {
            return (-1.0, 0.0, 0.0);
        }
        let (from, to, end) = if s < path.leg1_len() {
            (path.start(), path.corner(), path.leg1_len())
        } else {
            (path.corner(), path.dest(), path.len())
        };
        let mut vx = (to.x - from.x).signum() * self.speed;
        let mut vy = (to.y - from.y).signum() * self.speed;
        // axis-aligned legs move along exactly one axis
        if to.x == from.x {
            vx = 0.0;
        }
        if to.y == from.y {
            vy = 0.0;
        }
        (end, vx, vy)
    }

    /// Recomputes the [`Mobility::step_from`] fast-path cache from the
    /// authoritative `(path, s, pause_left)` state.
    fn refresh_leg_cache(&self, state: &mut MrwpState) {
        let (leg_end, vx, vy) = self.leg_cache(&state.path, state.s, state.pause_left);
        state.leg_end = leg_end;
        state.vx = vx;
        state.vy = vy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const L: f64 = 100.0;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn interleaving_step_and_step_from_stays_consistent() {
        // regression: a direct step() must invalidate the step_from leg
        // cache, or the next fused step moves along stale geometry
        let model = Mrwp::new(20.0, 1.5).unwrap();
        let mut r = rng(77);
        let mut st = model.init_stationary(&mut r);
        let mut pos = model.position(&st);
        for i in 0..500 {
            if i % 7 == 3 {
                model.step(&mut st, &mut r);
                pos = model.position(&st);
            } else {
                let (p, _) = model.step_from(&mut st, pos, &mut r);
                pos = p;
            }
            let truth = model.position(&st);
            assert!(
                (pos.x - truth.x).abs() < 1e-9 && (pos.y - truth.y).abs() < 1e-9,
                "step {i}: fused position {pos} diverged from {truth}"
            );
        }
    }

    #[test]
    fn construction_validates() {
        assert!(Mrwp::new(0.0, 1.0).is_err());
        assert!(Mrwp::new(-5.0, 1.0).is_err());
        assert!(Mrwp::new(f64::INFINITY, 1.0).is_err());
        assert!(Mrwp::new(10.0, -0.5).is_err());
        assert!(Mrwp::new(10.0, f64::NAN).is_err());
        assert!(
            Mrwp::new(10.0, 0.0).is_ok(),
            "zero speed is legal (static agents)"
        );
    }

    #[test]
    fn step_moves_exactly_speed_in_l1() {
        let model = Mrwp::new(L, 3.0).unwrap();
        let mut r = rng(1);
        let mut st = model.init_stationary(&mut r);
        for _ in 0..500 {
            let before = model.position(&st);
            let ev = model.step(&mut st, &mut r);
            let after = model.position(&st);
            // unless a trip completed mid-step, L1 displacement == speed
            if ev.arrivals == 0 {
                assert!(
                    (before.manhattan(after) - 3.0).abs() < 1e-9,
                    "displacement {}",
                    before.manhattan(after)
                );
            } else {
                // with carryover the displacement can only be shorter in L1
                assert!(before.manhattan(after) <= 3.0 + 1e-9);
            }
        }
    }

    #[test]
    fn agents_stay_in_region() {
        let model = Mrwp::new(L, 7.0).unwrap();
        let region = model.region();
        let mut r = rng(2);
        for seed_state in 0..20 {
            let mut st = if seed_state % 2 == 0 {
                model.init_stationary(&mut r)
            } else {
                model.init_at(Point::new(0.0, 0.0), &mut r)
            };
            for _ in 0..200 {
                model.step(&mut st, &mut r);
                assert!(region.contains(model.position(&st)));
            }
        }
    }

    #[test]
    fn zero_speed_never_moves() {
        let model = Mrwp::new(L, 0.0).unwrap();
        let mut r = rng(3);
        let mut st = model.init_stationary(&mut r);
        let p0 = model.position(&st);
        for _ in 0..50 {
            let ev = model.step(&mut st, &mut r);
            assert_eq!(model.position(&st), p0);
            assert_eq!(ev, StepEvents::default());
        }
    }

    #[test]
    fn init_at_starts_at_position() {
        let model = Mrwp::new(L, 1.0).unwrap();
        let mut r = rng(4);
        let p = Point::new(12.0, 34.0);
        let st = model.init_at(p, &mut r);
        assert_eq!(model.position(&st), p);
        assert_eq!(st.progress(), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside the region")]
    fn init_at_rejects_outside() {
        let model = Mrwp::new(L, 1.0).unwrap();
        let mut r = rng(5);
        model.init_at(Point::new(-1.0, 0.0), &mut r);
    }

    #[test]
    fn turns_are_counted_once_per_corner() {
        let model = Mrwp::new(L, 5.0).unwrap();
        let mut r = rng(6);
        let mut total_turns = 0u32;
        let mut total_arrivals = 0u32;
        let mut st = model.init_stationary(&mut r);
        let steps = 2000;
        for _ in 0..steps {
            let ev = model.step(&mut st, &mut r);
            total_turns += ev.turns;
            total_arrivals += ev.arrivals;
        }
        // each trip contributes at most one corner turn and exactly one
        // arrival; trips average 2L/3 in length -> about v·steps/(2L/3) trips
        let expected_trips = 5.0 * steps as f64 / (2.0 * L / 3.0);
        assert!(
            (total_arrivals as f64) > expected_trips * 0.8
                && (total_arrivals as f64) < expected_trips * 1.2,
            "arrivals {total_arrivals}, expected ≈ {expected_trips}"
        );
        assert!(
            total_turns <= total_arrivals + 1,
            "at most one corner per trip"
        );
        // most uniformly-chosen trips do turn
        assert!(total_turns as f64 > 0.8 * total_arrivals as f64);
    }

    #[test]
    fn stationary_positions_match_theorem1_marginal() {
        // KS test of the x-marginal against the Theorem 1 marginal CDF
        let model = Mrwp::new(L, 1.0).unwrap();
        let mut r = rng(7);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| model.position(&model.init_stationary(&mut r)).x)
            .collect();
        let res = fastflood_stats::ks::ks_one_sample(&xs, |t| {
            crate::distributions::spatial_marginal_cdf(L, t)
        })
        .unwrap();
        assert!(
            res.accepts(0.001),
            "stationary x-marginal rejected: D = {}, p = {}",
            res.statistic,
            res.p_value
        );
        // and it must NOT look uniform (the distribution is center-heavy)
        let uni = fastflood_stats::ks::ks_one_sample(&xs, |t| (t / L).clamp(0.0, 1.0)).unwrap();
        assert!(!uni.accepts(0.001), "marginal should differ from uniform");
    }

    #[test]
    fn stationarity_is_preserved_by_stepping() {
        // start stationary, run 300 steps, the marginal must still match
        let model = Mrwp::new(L, 2.0).unwrap();
        let mut r = rng(8);
        let mut xs = Vec::new();
        for _ in 0..4000 {
            let mut st = model.init_stationary(&mut r);
            for _ in 0..25 {
                model.step(&mut st, &mut r);
            }
            xs.push(model.position(&st).x);
        }
        let res = fastflood_stats::ks::ks_one_sample(&xs, |t| {
            crate::distributions::spatial_marginal_cdf(L, t)
        })
        .unwrap();
        assert!(
            res.accepts(0.001),
            "marginal after stepping rejected: D = {}, p = {}",
            res.statistic,
            res.p_value
        );
    }

    #[test]
    fn second_leg_probability_is_half() {
        // the stationary probability of being on the second leg equals the
        // cross mass of Theorem 2: exactly 1/2
        let model = Mrwp::new(L, 1.0).unwrap();
        let mut r = rng(9);
        let n = 100_000;
        let on_second = (0..n)
            .filter(|_| model.init_stationary(&mut r).on_second_leg())
            .count();
        let frac = on_second as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "second-leg fraction {frac}");
    }

    #[test]
    fn sample_stationary_position_in_region() {
        let model = Mrwp::new(L, 1.0).unwrap();
        let mut r = rng(10);
        for _ in 0..1000 {
            assert!(model
                .region()
                .contains(model.sample_stationary_position(&mut r)));
        }
    }

    #[test]
    fn pause_freezes_agent_at_waypoints() {
        let model = Mrwp::new(20.0, 5.0).unwrap().with_pause(3);
        assert_eq!(model.pause(), 3);
        let mut r = rng(20);
        let mut st = model.init_at(Point::new(10.0, 10.0), &mut r);
        let mut paused_streaks = Vec::new();
        let mut current = 0u32;
        for _ in 0..400 {
            let before = model.position(&st);
            model.step(&mut st, &mut r);
            let after = model.position(&st);
            if before == after {
                current += 1;
            } else if current > 0 {
                paused_streaks.push(current);
                current = 0;
            }
        }
        assert!(!paused_streaks.is_empty(), "agent must have paused");
        // every completed pause lasts exactly 3 steps
        for &streak in &paused_streaks {
            assert_eq!(streak, 3, "pause streaks must last exactly 3 steps");
        }
    }

    #[test]
    fn paused_fraction_matches_renewal_theory() {
        // stationary fraction of paused agents = pause / (E[len]/v + pause)
        // with E[len] = 2L/3
        let l = 60.0;
        let v = 2.0;
        let pause = 10u32;
        let model = Mrwp::new(l, v).unwrap().with_pause(pause);
        let mut r = rng(21);
        let n = 40_000;
        let paused = (0..n)
            .filter(|_| model.init_stationary(&mut r).is_paused())
            .count();
        let expected = pause as f64 / ((2.0 * l / 3.0) / v + pause as f64);
        let got = paused as f64 / n as f64;
        assert!(
            (got - expected).abs() < 0.01,
            "paused fraction {got} vs renewal theory {expected}"
        );
    }

    #[test]
    fn pause_zero_matches_original_model() {
        let a = Mrwp::new(50.0, 1.0).unwrap();
        let b = Mrwp::new(50.0, 1.0).unwrap().with_pause(0);
        let mut r1 = rng(22);
        let mut r2 = rng(22);
        let mut s1 = a.init_stationary(&mut r1);
        let mut s2 = b.init_stationary(&mut r2);
        for _ in 0..100 {
            a.step(&mut s1, &mut r1);
            b.step(&mut s2, &mut r2);
            assert_eq!(a.position(&s1), b.position(&s2));
        }
    }

    #[test]
    fn large_speed_carries_over_many_trips() {
        // speed larger than the region: several trips complete per step
        let model = Mrwp::new(10.0, 100.0).unwrap();
        let mut r = rng(11);
        let mut st = model.init_stationary(&mut r);
        let ev = model.step(&mut st, &mut r);
        assert!(ev.arrivals >= 2, "expected multiple arrivals, got {:?}", ev);
        assert!(model.region().contains(model.position(&st)));
    }
}
