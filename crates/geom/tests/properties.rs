//! Property-based tests for the geometry substrate.

use fastflood_geom::{Axis, CellGrid, LPath, Point, Rect, Segment, Vec2};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -1.0e6..1.0e6
}

fn point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn axis() -> impl Strategy<Value = Axis> {
    prop_oneof![Just(Axis::X), Just(Axis::Y)]
}

proptest! {
    // ---- metrics ----

    #[test]
    fn metrics_nonnegative_symmetric(a in point(), b in point()) {
        for d in [a.euclid(b), a.manhattan(b), a.chebyshev(b)] {
            prop_assert!(d >= 0.0);
        }
        prop_assert_eq!(a.euclid(b), b.euclid(a));
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert_eq!(a.chebyshev(b), b.chebyshev(a));
    }

    #[test]
    fn metric_norm_ordering(a in point(), b in point()) {
        // L∞ ≤ L2 ≤ L1 ≤ 2·L∞ and L2² = euclid_sq
        let linf = a.chebyshev(b);
        let l2 = a.euclid(b);
        let l1 = a.manhattan(b);
        prop_assert!(linf <= l2 * (1.0 + 1e-12) + 1e-12);
        prop_assert!(l2 <= l1 * (1.0 + 1e-12) + 1e-12);
        prop_assert!(l1 <= 2.0 * linf * (1.0 + 1e-12) + 1e-12);
        prop_assert!((a.euclid_sq(b).sqrt() - l2).abs() <= 1e-9 * (1.0 + l2));
    }

    #[test]
    fn triangle_inequality(a in point(), b in point(), c in point()) {
        let slack = 1e-6;
        prop_assert!(a.euclid(c) <= a.euclid(b) + b.euclid(c) + slack);
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c) + slack);
        prop_assert!(a.chebyshev(c) <= a.chebyshev(b) + b.chebyshev(c) + slack);
    }

    #[test]
    fn vector_roundtrip(p in point(), q in point()) {
        let v: Vec2 = q - p;
        let back = p + v;
        prop_assert!((back.x - q.x).abs() < 1e-9);
        prop_assert!((back.y - q.y).abs() < 1e-9);
        prop_assert!((v.norm() - p.euclid(q)).abs() < 1e-9 * (1.0 + v.norm()));
        prop_assert!((v.norm_l1() - p.manhattan(q)).abs() < 1e-9 * (1.0 + v.norm_l1()));
    }

    // ---- rects ----

    #[test]
    fn rect_clamp_is_inside_and_idempotent(a in point(), b in point(), p in point()) {
        let rect = Rect::spanning(a, b).unwrap();
        let c = rect.clamp(p);
        prop_assert!(rect.contains(c));
        prop_assert_eq!(rect.clamp(c), c);
        if rect.contains(p) {
            prop_assert_eq!(c, p);
        }
    }

    #[test]
    fn rect_distance_zero_iff_contained(a in point(), b in point(), p in point()) {
        let rect = Rect::spanning(a, b).unwrap();
        let d = rect.distance(p);
        prop_assert_eq!(d == 0.0, rect.contains(p));
        prop_assert!(rect.manhattan_distance(p) >= d - 1e-12);
    }

    #[test]
    fn rect_intersection_is_contained(
        a in point(), b in point(), c in point(), d in point()
    ) {
        let r1 = Rect::spanning(a, b).unwrap();
        let r2 = Rect::spanning(c, d).unwrap();
        if let Some(i) = r1.intersection(&r2) {
            prop_assert!(r1.contains_rect(&i));
            prop_assert!(r2.contains_rect(&i));
            prop_assert!(i.area() <= r1.area().min(r2.area()) + 1e-9);
        }
    }

    // ---- L-paths ----

    #[test]
    fn lpath_point_at_stays_on_path(
        s in point(), d in point(), ax in axis(), t in 0.0f64..1.0
    ) {
        let path = LPath::new(s, d, ax);
        let len = path.len();
        let p = path.point_at(t * len);
        // point lies within the bounding box of the two endpoints
        let bbox = Rect::spanning(s, d).unwrap();
        prop_assert!(bbox.contains(bbox.clamp(p)));
        prop_assert!(bbox.distance(p) < 1e-9 * (1.0 + len));
        // arc-length additivity: distance from start along Manhattan metric
        let d_start = s.manhattan(p);
        let d_end = p.manhattan(d);
        prop_assert!((d_start + d_end - len).abs() < 1e-6 * (1.0 + len));
    }

    #[test]
    fn lpath_endpoints(s in point(), d in point(), ax in axis()) {
        let path = LPath::new(s, d, ax);
        prop_assert_eq!(path.point_at(0.0), s);
        let end = path.point_at(path.len());
        prop_assert!((end.x - d.x).abs() < 1e-9 * (1.0 + d.x.abs()));
        prop_assert!((end.y - d.y).abs() < 1e-9 * (1.0 + d.y.abs()));
    }

    #[test]
    fn lpath_alternate_same_geometry(s in point(), d in point(), ax in axis()) {
        let path = LPath::new(s, d, ax);
        let alt = path.alternate();
        prop_assert_eq!(path.len(), alt.len());
        prop_assert_eq!(path.leg1_len(), alt.leg2_len());
        prop_assert_eq!(path.leg2_len(), alt.leg1_len());
    }

    #[test]
    fn lpath_legs_are_axis_aligned(s in point(), d in point(), ax in axis()) {
        let path = LPath::new(s, d, ax);
        for leg in path.legs() {
            if !leg.is_empty() {
                let a = leg.axis().unwrap();
                // a leg never moves along the other axis
                match a {
                    Axis::X => prop_assert_eq!(leg.start().y, leg.end().y),
                    Axis::Y => prop_assert_eq!(leg.start().x, leg.end().x),
                }
            }
        }
    }

    #[test]
    fn lpath_monotone_progress(
        s in point(), d in point(), ax in axis(), t1 in 0.0f64..1.0, t2 in 0.0f64..1.0
    ) {
        let path = LPath::new(s, d, ax);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let p_lo = path.point_at(lo * path.len());
        let p_hi = path.point_at(hi * path.len());
        // traveling further along the path moves further from start in L1
        prop_assert!(s.manhattan(p_lo) <= s.manhattan(p_hi) + 1e-6 * (1.0 + path.len()));
        // and the L1 gap between the two equals the arc-length gap
        let gap = (hi - lo) * path.len();
        prop_assert!((p_lo.manhattan(p_hi) - gap).abs() < 1e-6 * (1.0 + path.len()));
    }

    // ---- segments ----

    #[test]
    fn segment_point_at_contains(
        x0 in finite_coord(), y0 in finite_coord(), dx in finite_coord(), t in 0.0f64..1.0
    ) {
        let s = Segment::new(Point::new(x0, y0), Point::new(x0 + dx, y0)).unwrap();
        let p = s.point_at(t * s.len());
        prop_assert!(s.contains(Point::new(p.x, y0)));
    }

    // ---- grids ----

    #[test]
    fn grid_cell_of_matches_rect(side in 1.0f64..1e4, m in 1usize..64, tx in 0.0f64..1.0, ty in 0.0f64..1.0) {
        let g = CellGrid::new(side, m).unwrap();
        // sample a point strictly inside the region
        let p = Point::new(tx * side * 0.999999, ty * side * 0.999999);
        let cell = g.cell_of(p);
        prop_assert!(g.contains_cell(cell));
        let rect = g.rect_of(cell);
        prop_assert!(rect.contains(p), "cell rect {rect} must contain {p}");
    }

    #[test]
    fn grid_cores_are_disjoint_from_neighbor_rects_shrunk(side in 1.0f64..1e3, m in 2usize..32) {
        let g = CellGrid::new(side, m).unwrap();
        let c = g.cell_of(Point::new(side / 2.0, side / 2.0));
        let core = g.core_of(c);
        for n in g.neighbors8(c) {
            prop_assert!(core.intersection(&g.core_of(n)).is_none());
        }
    }

    #[test]
    fn grid_index_bijection(side in 1.0f64..1e4, m in 1usize..64) {
        let g = CellGrid::new(side, m).unwrap();
        let mut seen = vec![false; g.num_cells()];
        for cell in g.cells() {
            let i = g.index_of(cell);
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }
}
