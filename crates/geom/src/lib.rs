//! Planar geometry substrate for the `fastflood` MANET simulator.
//!
//! This crate provides the geometric vocabulary used by every other crate in
//! the workspace: [`Point`]s and [`Vec2`]s in the plane, the three distance
//! metrics relevant to the Manhattan Random Way-Point model
//! ([`Point::euclid`], [`Point::manhattan`], [`Point::chebyshev`]),
//! axis-aligned [`Rect`]angles and [`Segment`]s, the square [`CellGrid`]
//! partition used by the paper's Central-Zone analysis, and the Manhattan
//! [`LPath`] (the two-leg shortest path an MRWP agent follows between
//! way-points).
//!
//! Everything is plain `f64` geometry with no external dependencies.
//!
//! # Examples
//!
//! ```
//! use fastflood_geom::{Point, LPath, Axis};
//!
//! // An agent at (0, 0) travels to (3, 4) moving vertically first
//! // (the paper's path P1: (x0,y0) -> (x0,y) -> (x,y)).
//! let path = LPath::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0), Axis::Y);
//! assert_eq!(path.len(), 7.0); // Manhattan length
//! assert_eq!(path.point_at(4.0), Point::new(0.0, 4.0)); // the turn corner
//! assert_eq!(path.point_at(6.0), Point::new(2.0, 4.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod axis;
mod grid;
mod lpath;
mod point;
mod rect;
mod segment;

pub use axis::{Axis, Cardinal};
pub use grid::{Cell, CellGrid, CellIter};
pub use lpath::LPath;
pub use point::{Point, Vec2};
pub use rect::Rect;
pub use segment::Segment;

use std::error::Error;
use std::fmt;

/// Error produced when constructing a geometric object from invalid inputs.
///
/// # Examples
///
/// ```
/// use fastflood_geom::{CellGrid, GeomError};
///
/// let err = CellGrid::new(-1.0, 4).unwrap_err();
/// assert!(matches!(err, GeomError::NonPositiveLength(_)));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeomError {
    /// A length parameter (side, radius, ...) must be strictly positive.
    NonPositiveLength(f64),
    /// A subdivision count must be at least one.
    ZeroSubdivision,
    /// A rectangle was given corners with `min > max` on some axis.
    InvertedRect {
        /// Requested minimum corner.
        min: Point,
        /// Requested maximum corner.
        max: Point,
    },
    /// A coordinate was not finite (NaN or infinite).
    NotFinite(f64),
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::NonPositiveLength(v) => {
                write!(f, "length must be strictly positive, got {v}")
            }
            GeomError::ZeroSubdivision => write!(f, "subdivision count must be at least 1"),
            GeomError::InvertedRect { min, max } => {
                write!(f, "rectangle corners inverted: min {min} exceeds max {max}")
            }
            GeomError::NotFinite(v) => write!(f, "coordinate must be finite, got {v}"),
        }
    }
}

impl Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errs = [
            GeomError::NonPositiveLength(-2.0),
            GeomError::ZeroSubdivision,
            GeomError::InvertedRect {
                min: Point::new(1.0, 1.0),
                max: Point::new(0.0, 0.0),
            },
            GeomError::NotFinite(f64::NAN),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<GeomError>();
    }
}
