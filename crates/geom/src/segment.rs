//! Axis-aligned segments.

use crate::{Axis, Cardinal, Point};
use std::fmt;

/// A directed, axis-aligned segment.
///
/// MRWP agents only ever travel along axis-parallel segments; an
/// [`LPath`](crate::LPath) is one or two of these. The segment is directed
/// from [`Segment::start`] to [`Segment::end`].
///
/// # Examples
///
/// ```
/// use fastflood_geom::{Point, Segment, Cardinal};
///
/// let s = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 4.0)).unwrap();
/// assert_eq!(s.len(), 3.0);
/// assert_eq!(s.direction(), Some(Cardinal::North));
/// assert_eq!(s.point_at(2.0), Point::new(1.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    start: Point,
    end: Point,
}

impl Segment {
    /// Creates a segment between two points sharing a coordinate.
    ///
    /// Returns `None` when the points differ in *both* coordinates (the
    /// segment would not be axis-aligned). Degenerate (zero-length) segments
    /// are allowed and report `axis() == None`.
    pub fn new(start: Point, end: Point) -> Option<Segment> {
        if start.x != end.x && start.y != end.y {
            return None;
        }
        Some(Segment { start, end })
    }

    /// Creates a degenerate segment at a single point.
    pub fn degenerate(p: Point) -> Segment {
        Segment { start: p, end: p }
    }

    /// Start point.
    #[inline]
    pub fn start(&self) -> Point {
        self.start
    }

    /// End point.
    #[inline]
    pub fn end(&self) -> Point {
        self.end
    }

    /// Length of the segment.
    #[inline]
    pub fn len(&self) -> f64 {
        self.start.manhattan(self.end)
    }

    /// Whether the segment has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The axis the segment runs along, or `None` when degenerate.
    pub fn axis(&self) -> Option<Axis> {
        if self.is_empty() {
            None
        } else if self.start.y == self.end.y {
            Some(Axis::X)
        } else {
            Some(Axis::Y)
        }
    }

    /// The travel direction, or `None` when degenerate.
    pub fn direction(&self) -> Option<Cardinal> {
        let axis = self.axis()?;
        let delta = match axis {
            Axis::X => self.end.x - self.start.x,
            Axis::Y => self.end.y - self.start.y,
        };
        Cardinal::from_delta(axis, delta)
    }

    /// The point at distance `s` from the start along the segment.
    ///
    /// `s` is clamped to `[0, len]`.
    pub fn point_at(&self, s: f64) -> Point {
        let len = self.len();
        if len == 0.0 {
            return self.start;
        }
        let t = (s / len).clamp(0.0, 1.0);
        self.start.lerp(self.end, t)
    }

    /// The reversed segment (end to start).
    pub fn reversed(&self) -> Segment {
        Segment {
            start: self.end,
            end: self.start,
        }
    }

    /// Whether `p` lies on the segment (within floating-point exactness).
    pub fn contains(&self, p: Point) -> bool {
        match self.axis() {
            None => p == self.start,
            Some(Axis::X) => {
                p.y == self.start.y
                    && p.x >= self.start.x.min(self.end.x)
                    && p.x <= self.start.x.max(self.end.x)
            }
            Some(Axis::Y) => {
                p.x == self.start.x
                    && p.y >= self.start.y.min(self.end.y)
                    && p.y <= self.start.y.max(self.end.y)
            }
        }
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_diagonal() {
        assert!(Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).is_none());
        assert!(Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0)).is_some());
        assert!(Segment::new(Point::new(0.0, 0.0), Point::new(0.0, -1.0)).is_some());
    }

    #[test]
    fn degenerate_segment() {
        let p = Point::new(2.0, 3.0);
        let s = Segment::degenerate(p);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0.0);
        assert_eq!(s.axis(), None);
        assert_eq!(s.direction(), None);
        assert_eq!(s.point_at(10.0), p);
        assert!(s.contains(p));
        assert!(!s.contains(Point::new(2.0, 3.1)));
    }

    #[test]
    fn axis_and_direction() {
        let e = Segment::new(Point::new(0.0, 1.0), Point::new(5.0, 1.0)).unwrap();
        assert_eq!(e.axis(), Some(Axis::X));
        assert_eq!(e.direction(), Some(Cardinal::East));
        let w = e.reversed();
        assert_eq!(w.direction(), Some(Cardinal::West));
        let n = Segment::new(Point::new(2.0, 0.0), Point::new(2.0, 3.0)).unwrap();
        assert_eq!(n.direction(), Some(Cardinal::North));
        assert_eq!(n.reversed().direction(), Some(Cardinal::South));
    }

    #[test]
    fn point_at_clamps() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0)).unwrap();
        assert_eq!(s.point_at(-1.0), s.start());
        assert_eq!(s.point_at(0.0), s.start());
        assert_eq!(s.point_at(2.0), Point::new(2.0, 0.0));
        assert_eq!(s.point_at(4.0), s.end());
        assert_eq!(s.point_at(9.0), s.end());
    }

    #[test]
    fn contains_on_segment() {
        let s = Segment::new(Point::new(1.0, 2.0), Point::new(1.0, 5.0)).unwrap();
        assert!(s.contains(Point::new(1.0, 2.0)));
        assert!(s.contains(Point::new(1.0, 3.5)));
        assert!(s.contains(Point::new(1.0, 5.0)));
        assert!(!s.contains(Point::new(1.0, 5.5)));
        assert!(!s.contains(Point::new(1.1, 3.0)));
        // works for reversed direction too
        assert!(s.reversed().contains(Point::new(1.0, 3.5)));
    }

    #[test]
    fn display() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0)).unwrap();
        assert_eq!(s.to_string(), "(0, 0) -> (1, 0)");
    }
}
