//! Points and vectors in the plane with the three metrics used by the paper.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in the plane.
///
/// `Point` is a passive, C-style data structure with public fields. It
/// implements the arithmetic needed for mobility updates (`Point + Vec2`,
/// `Point - Point -> Vec2`) and the three metrics relevant to the Manhattan
/// Random Way-Point analysis.
///
/// # Examples
///
/// ```
/// use fastflood_geom::{Point, Vec2};
///
/// let a = Point::new(1.0, 2.0);
/// let b = Point::new(4.0, 6.0);
/// assert_eq!(a.euclid(b), 5.0);
/// assert_eq!(a.manhattan(b), 7.0);
/// assert_eq!(a.chebyshev(b), 4.0);
/// assert_eq!(a + Vec2::new(3.0, 4.0), b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement (vector) in the plane.
///
/// # Examples
///
/// ```
/// use fastflood_geom::Vec2;
///
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// assert_eq!((v * 2.0).norm(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean (L2) distance to `other`.
    ///
    /// This is the metric of the transmission disk: two agents exchange data
    /// iff their Euclidean distance is at most the radius `R`.
    #[inline]
    pub fn euclid(self, other: Point) -> f64 {
        self.euclid_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root in hot
    /// radius comparisons).
    #[inline]
    pub fn euclid_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// This is the length of both feasible MRWP paths between the points.
    #[inline]
    pub fn manhattan(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Chebyshev (L∞) distance to `other`.
    #[inline]
    pub fn chebyshev(self, other: Point) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    ///
    /// `t` is not clamped; values outside `[0, 1]` extrapolate.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// The displacement from `self` to `other` (`other - self`).
    #[inline]
    pub fn to(self, other: Point) -> Vec2 {
        other - self
    }

    /// Whether both coordinates are finite (neither NaN nor infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// L1 norm (`|x| + |y|`).
    #[inline]
    pub fn norm_l1(self) -> f64 {
        self.x.abs() + self.y.abs()
    }

    /// L∞ norm (`max(|x|, |y|)`).
    #[inline]
    pub fn norm_linf(self) -> f64 {
        self.x.abs().max(self.y.abs())
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Returns the vector scaled to unit Euclidean norm, or `None` when the
    /// norm is zero or not finite.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.x, self.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign<Vec2> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Sub for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.euclid(b), 5.0);
        assert_eq!(a.euclid_sq(b), 25.0);
        assert_eq!(a.manhattan(b), 7.0);
        assert_eq!(a.chebyshev(b), 4.0);
        // metrics are symmetric
        assert_eq!(a.euclid(b), b.euclid(a));
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.chebyshev(b), b.chebyshev(a));
        // identity of indiscernibles
        assert_eq!(a.euclid(a), 0.0);
        assert_eq!(b.manhattan(b), 0.0);
    }

    #[test]
    fn metric_ordering_linf_le_l2_le_l1() {
        let a = Point::new(-2.0, 7.5);
        let b = Point::new(1.25, -3.0);
        assert!(a.chebyshev(b) <= a.euclid(b) + 1e-12);
        assert!(a.euclid(b) <= a.manhattan(b) + 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(2.0, 3.0));
    }

    #[test]
    fn point_vector_arithmetic() {
        let p = Point::new(1.0, 2.0);
        let v = Vec2::new(0.5, -1.0);
        assert_eq!(p + v, Point::new(1.5, 1.0));
        assert_eq!((p + v) - v, p);
        assert_eq!(p.to(p + v), v);
        let mut q = p;
        q += v;
        q -= v;
        assert_eq!(q, p);
    }

    #[test]
    fn vec_ops_and_norms() {
        let v = Vec2::new(3.0, -4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_l1(), 7.0);
        assert_eq!(v.norm_linf(), 4.0);
        assert_eq!(-v, Vec2::new(-3.0, 4.0));
        assert_eq!(v * 2.0, Vec2::new(6.0, -8.0));
        assert_eq!(2.0 * v, v * 2.0);
        assert_eq!(v / 2.0, Vec2::new(1.5, -2.0));
        assert_eq!(v.dot(Vec2::new(1.0, 1.0)), -1.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn conversions_and_display() {
        let p: Point = (1.0, 2.0).into();
        let (x, y): (f64, f64) = p.into();
        assert_eq!((x, y), (1.0, 2.0));
        let v: Vec2 = (3.0, 4.0).into();
        assert_eq!(v, Vec2::new(3.0, 4.0));
        assert_eq!(p.to_string(), "(1, 2)");
        assert_eq!(v.to_string(), "<3, 4>");
    }

    #[test]
    fn finiteness_and_min_max() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min(b), Point::new(1.0, 3.0));
        assert_eq!(a.max(b), Point::new(2.0, 5.0));
    }
}
