//! Axis-aligned rectangles.

use crate::{GeomError, Point};
use std::fmt;

/// An axis-aligned rectangle, stored as its min and max corners.
///
/// Containment is closed on all edges: a rectangle contains its boundary.
/// (The simulation region is the closed square `[0, L]²`; agents may sit
/// exactly on the border.)
///
/// # Examples
///
/// ```
/// use fastflood_geom::{Point, Rect};
///
/// let r = Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 2.0))?;
/// assert_eq!(r.area(), 8.0);
/// assert!(r.contains(Point::new(4.0, 2.0))); // closed boundary
/// assert!(!r.contains(Point::new(4.1, 2.0)));
/// # Ok::<(), fastflood_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from its min and max corners.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvertedRect`] when `min > max` on either axis,
    /// and [`GeomError::NotFinite`] when a coordinate is NaN or infinite.
    /// Zero-width or zero-height (degenerate) rectangles are allowed.
    pub fn new(min: Point, max: Point) -> Result<Rect, GeomError> {
        for v in [min.x, min.y, max.x, max.y] {
            if !v.is_finite() {
                return Err(GeomError::NotFinite(v));
            }
        }
        if min.x > max.x || min.y > max.y {
            return Err(GeomError::InvertedRect { min, max });
        }
        Ok(Rect { min, max })
    }

    /// Creates the rectangle spanned by two arbitrary corner points.
    ///
    /// Unlike [`Rect::new`], the corners may come in any order.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::NotFinite`] when a coordinate is NaN or infinite.
    pub fn spanning(a: Point, b: Point) -> Result<Rect, GeomError> {
        Rect::new(a.min(b), a.max(b))
    }

    /// The square `[0, side]²` — the paper's simulation region.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::NonPositiveLength`] if `side <= 0` or not finite.
    pub fn square(side: f64) -> Result<Rect, GeomError> {
        if side <= 0.0 || !side.is_finite() {
            return Err(GeomError::NonPositiveLength(side));
        }
        Rect::new(Point::ORIGIN, Point::new(side, side))
    }

    /// Minimum corner.
    #[inline]
    pub fn min(&self) -> Point {
        self.min
    }

    /// Maximum corner.
    #[inline]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width (`x` extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (`y` extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.lerp(self.max, 0.5)
    }

    /// Whether the rectangle contains `p` (closed on all edges).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` to the closest point inside the rectangle.
    #[inline]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// The intersection with `other`, or `None` when disjoint.
    ///
    /// Touching rectangles intersect in a degenerate (zero-area) rectangle.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let min = self.min.max(other.min);
        let max = self.max.min(other.max);
        if min.x <= max.x && min.y <= max.y {
            Some(Rect { min, max })
        } else {
            None
        }
    }

    /// Whether `other` lies entirely inside this rectangle (closed).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// The rectangle shrunk by `margin` on every side.
    ///
    /// Returns `None` when the margin exceeds half the width or height.
    pub fn shrink(&self, margin: f64) -> Option<Rect> {
        if margin < 0.0 || 2.0 * margin > self.width() || 2.0 * margin > self.height() {
            return None;
        }
        Some(Rect {
            min: Point::new(self.min.x + margin, self.min.y + margin),
            max: Point::new(self.max.x - margin, self.max.y - margin),
        })
    }

    /// The four corners in counter-clockwise order starting at `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// Euclidean distance from `p` to the rectangle (zero if inside).
    pub fn distance(&self, p: Point) -> f64 {
        p.euclid(self.clamp(p))
    }

    /// Manhattan distance from `p` to the rectangle (zero if inside).
    ///
    /// Used by the Extended-Suburb definition: points within Manhattan
    /// distance `2S` of the Suburb.
    pub fn manhattan_distance(&self, p: Point) -> f64 {
        p.manhattan(self.clamp(p))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Rect::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0)).is_err());
        assert!(Rect::new(Point::new(0.0, f64::NAN), Point::new(1.0, 1.0)).is_err());
        assert!(Rect::square(0.0).is_err());
        assert!(Rect::square(-3.0).is_err());
        assert!(Rect::square(f64::INFINITY).is_err());
        // degenerate rect is fine
        assert!(Rect::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0)).is_ok());
    }

    #[test]
    fn spanning_reorders_corners() {
        let a = Rect::spanning(Point::new(4.0, 1.0), Point::new(0.0, 3.0)).unwrap();
        assert_eq!(a, r(0.0, 1.0, 4.0, 3.0));
    }

    #[test]
    fn measurements() {
        let rect = r(1.0, 2.0, 4.0, 6.0);
        assert_eq!(rect.width(), 3.0);
        assert_eq!(rect.height(), 4.0);
        assert_eq!(rect.area(), 12.0);
        assert_eq!(rect.center(), Point::new(2.5, 4.0));
    }

    #[test]
    fn containment_is_closed() {
        let rect = r(0.0, 0.0, 1.0, 1.0);
        assert!(rect.contains(Point::new(0.0, 0.0)));
        assert!(rect.contains(Point::new(1.0, 1.0)));
        assert!(rect.contains(Point::new(0.5, 1.0)));
        assert!(!rect.contains(Point::new(1.0000001, 0.5)));
        assert!(!rect.contains(Point::new(0.5, -0.0000001)));
    }

    #[test]
    fn clamp_projects_onto_rect() {
        let rect = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(rect.clamp(Point::new(-1.0, 1.0)), Point::new(0.0, 1.0));
        assert_eq!(rect.clamp(Point::new(3.0, 5.0)), Point::new(2.0, 2.0));
        let inside = Point::new(1.0, 1.5);
        assert_eq!(rect.clamp(inside), inside);
    }

    #[test]
    fn intersection_cases() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection(&b), Some(r(1.0, 1.0, 2.0, 2.0)));
        // touching: degenerate intersection
        let c = r(2.0, 0.0, 4.0, 2.0);
        let t = a.intersection(&c).unwrap();
        assert_eq!(t.area(), 0.0);
        // disjoint
        let d = r(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.intersection(&d), None);
        // symmetric
        assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn contains_rect_and_shrink() {
        let outer = r(0.0, 0.0, 9.0, 9.0);
        let inner = outer.shrink(3.0).unwrap();
        assert_eq!(inner, r(3.0, 3.0, 6.0, 6.0));
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.shrink(4.6).is_none());
        assert!(outer.shrink(-0.1).is_none());
        // shrink by exactly half collapses to center point
        let p = outer.shrink(4.5).unwrap();
        assert_eq!(p.area(), 0.0);
        assert_eq!(p.center(), Point::new(4.5, 4.5));
    }

    #[test]
    fn corners_ccw() {
        let rect = r(0.0, 0.0, 2.0, 1.0);
        assert_eq!(
            rect.corners(),
            [
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(2.0, 1.0),
                Point::new(0.0, 1.0),
            ]
        );
    }

    #[test]
    fn distances() {
        let rect = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(rect.distance(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(rect.distance(Point::new(5.0, 2.0)), 3.0);
        assert_eq!(rect.distance(Point::new(5.0, 6.0)), 5.0);
        assert_eq!(rect.manhattan_distance(Point::new(5.0, 6.0)), 7.0);
        assert_eq!(rect.manhattan_distance(Point::new(1.0, 0.5)), 0.0);
    }

    #[test]
    fn display() {
        assert_eq!(r(0.0, 0.0, 1.0, 2.0).to_string(), "[(0, 0), (1, 2)]");
    }
}
