//! Manhattan L-paths: the two-leg routes of the MRWP model.

use crate::{Axis, Cardinal, Point, Segment};
use std::fmt;

/// A Manhattan shortest path from `start` to `dest` made of at most two
/// axis-parallel legs.
///
/// The MRWP model (paper §2) gives an agent at `(x0, y0)` heading to `(x, y)`
/// a fair-coin choice between
///
/// * `P1 = ((x0,y0) -> (x0,y) -> (x,y))` — vertical first
///   ([`Axis::Y`] as `first_axis`), and
/// * `P2 = ((x0,y0) -> (x,y0) -> (x,y))` — horizontal first
///   ([`Axis::X`] as `first_axis`).
///
/// Both have length `‖dest − start‖₁`. When start and destination share a
/// coordinate the path degenerates to a single segment (or a point), and the
/// two choices coincide.
///
/// # Examples
///
/// ```
/// use fastflood_geom::{Axis, LPath, Point};
///
/// let p1 = LPath::new(Point::new(1.0, 1.0), Point::new(4.0, 3.0), Axis::Y);
/// assert_eq!(p1.corner(), Point::new(1.0, 3.0));
/// assert_eq!(p1.len(), 5.0);
///
/// let p2 = LPath::new(Point::new(1.0, 1.0), Point::new(4.0, 3.0), Axis::X);
/// assert_eq!(p2.corner(), Point::new(4.0, 1.0));
/// assert_eq!(p2.len(), p1.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LPath {
    start: Point,
    dest: Point,
    first_axis: Axis,
    // Trip-invariant geometry, cached at construction: an agent samples
    // its path millions of times (`point_at`/`remaining` every step of
    // every trip), so corner/leg lengths must not be recomputed per call.
    corner: Point,
    leg1: f64,
    leg2: f64,
    len: f64,
}

impl LPath {
    /// Creates the L-path from `start` to `dest` traveling along
    /// `first_axis` first.
    pub fn new(start: Point, dest: Point, first_axis: Axis) -> LPath {
        let corner = match first_axis {
            // travel along y first: x stays at start.x until the corner
            Axis::Y => Point::new(start.x, dest.y),
            Axis::X => Point::new(dest.x, start.y),
        };
        LPath {
            start,
            dest,
            first_axis,
            corner,
            leg1: start.manhattan(corner),
            leg2: corner.manhattan(dest),
            len: start.manhattan(dest),
        }
    }

    /// Start point.
    #[inline]
    pub fn start(&self) -> Point {
        self.start
    }

    /// Destination point.
    #[inline]
    pub fn dest(&self) -> Point {
        self.dest
    }

    /// The axis traveled first.
    #[inline]
    pub fn first_axis(&self) -> Axis {
        self.first_axis
    }

    /// Total path length (the Manhattan distance between endpoints).
    #[inline]
    pub fn len(&self) -> f64 {
        self.len
    }

    /// Whether the path has zero length (start equals destination).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.dest
    }

    /// The corner (turn point) of the path.
    ///
    /// For degenerate paths (single leg or single point) the corner
    /// coincides with an endpoint.
    #[inline]
    pub fn corner(&self) -> Point {
        self.corner
    }

    /// Length of the first leg (start to corner).
    #[inline]
    pub fn leg1_len(&self) -> f64 {
        self.leg1
    }

    /// Length of the second leg (corner to destination).
    #[inline]
    pub fn leg2_len(&self) -> f64 {
        self.leg2
    }

    /// The two legs as segments; either may be degenerate.
    pub fn legs(&self) -> [Segment; 2] {
        let c = self.corner();
        [
            Segment::new(self.start, c).expect("leg 1 is axis-aligned by construction"),
            Segment::new(c, self.dest).expect("leg 2 is axis-aligned by construction"),
        ]
    }

    /// Whether the path actually turns (both legs have positive length).
    #[inline]
    pub fn has_turn(&self) -> bool {
        self.leg1 > 0.0 && self.leg2 > 0.0
    }

    /// Arc-length position of the turn, or `None` when the path does not
    /// turn.
    #[inline]
    pub fn turn_at(&self) -> Option<f64> {
        if self.has_turn() {
            Some(self.leg1)
        } else {
            None
        }
    }

    /// The point at arc-length `s` from the start.
    ///
    /// `s` is clamped to `[0, len]`, so `point_at(0.0) == start()` and
    /// `point_at(len) == dest()`.
    #[inline]
    pub fn point_at(&self, s: f64) -> Point {
        let s = s.clamp(0.0, self.len);
        if s <= self.leg1 {
            if self.leg1 == 0.0 {
                return self.start;
            }
            self.start.lerp(self.corner, s / self.leg1)
        } else {
            // s > leg1 implies a positive second leg
            self.corner.lerp(self.dest, (s - self.leg1) / self.leg2)
        }
    }

    /// The travel direction at arc-length `s`, or `None` for an empty path.
    ///
    /// Exactly at the turn the direction of the *second* leg is reported
    /// (the agent has finished the first leg).
    pub fn direction_at(&self, s: f64) -> Option<Cardinal> {
        if self.is_empty() {
            return None;
        }
        let s = s.clamp(0.0, self.len());
        let [leg1, leg2] = self.legs();
        if s < self.leg1_len() || leg2.is_empty() {
            leg1.direction()
        } else {
            leg2.direction()
        }
    }

    /// Remaining distance from arc-length `s` to the destination.
    #[inline]
    pub fn remaining(&self, s: f64) -> f64 {
        (self.len - s.clamp(0.0, self.len)).max(0.0)
    }

    /// The opposite-corner path between the same endpoints (the other of
    /// the paper's `{P1, P2}` pair).
    pub fn alternate(&self) -> LPath {
        LPath::new(self.start, self.dest, self.first_axis.other())
    }
}

impl fmt::Display for LPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} -> {}", self.start, self.corner(), self.dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn corners_match_paper_definition() {
        // P1 = ((x0,y0) -> (x0,y) -> (x,y)): vertical first
        let p1 = LPath::new(p(1.0, 2.0), p(5.0, 7.0), Axis::Y);
        assert_eq!(p1.corner(), p(1.0, 7.0));
        // P2 = ((x0,y0) -> (x,y0) -> (x,y)): horizontal first
        let p2 = LPath::new(p(1.0, 2.0), p(5.0, 7.0), Axis::X);
        assert_eq!(p2.corner(), p(5.0, 2.0));
    }

    #[test]
    fn lengths_sum_to_manhattan() {
        for axis in Axis::ALL {
            let path = LPath::new(p(1.0, 2.0), p(-3.0, 9.0), axis);
            assert_eq!(path.len(), 11.0);
            assert_eq!(path.leg1_len() + path.leg2_len(), path.len());
        }
    }

    #[test]
    fn point_at_endpoints_and_corner() {
        let path = LPath::new(p(0.0, 0.0), p(3.0, 4.0), Axis::Y);
        assert_eq!(path.point_at(0.0), p(0.0, 0.0));
        assert_eq!(path.point_at(4.0), p(0.0, 4.0)); // corner (leg1 = 4 up)
        assert_eq!(path.point_at(5.5), p(1.5, 4.0));
        assert_eq!(path.point_at(7.0), p(3.0, 4.0));
        // clamped
        assert_eq!(path.point_at(-2.0), path.start());
        assert_eq!(path.point_at(100.0), path.dest());
    }

    #[test]
    fn directions_change_at_turn() {
        let path = LPath::new(p(0.0, 0.0), p(3.0, -4.0), Axis::Y);
        assert_eq!(path.direction_at(0.0), Some(Cardinal::South));
        assert_eq!(path.direction_at(3.9), Some(Cardinal::South));
        assert_eq!(path.direction_at(4.0), Some(Cardinal::East)); // at turn: second leg
        assert_eq!(path.direction_at(6.0), Some(Cardinal::East));
        assert_eq!(path.turn_at(), Some(4.0));
        assert!(path.has_turn());
    }

    #[test]
    fn degenerate_single_leg() {
        // destination straight east: no turn regardless of axis choice
        let path = LPath::new(p(0.0, 1.0), p(5.0, 1.0), Axis::Y);
        assert!(!path.has_turn());
        assert_eq!(path.turn_at(), None);
        assert_eq!(path.len(), 5.0);
        assert_eq!(path.point_at(2.0), p(2.0, 1.0));
        assert_eq!(path.direction_at(0.0), Some(Cardinal::East));
        assert_eq!(path.direction_at(4.9), Some(Cardinal::East));
    }

    #[test]
    fn degenerate_point_path() {
        let path = LPath::new(p(2.0, 2.0), p(2.0, 2.0), Axis::X);
        assert!(path.is_empty());
        assert_eq!(path.len(), 0.0);
        assert!(!path.has_turn());
        assert_eq!(path.point_at(0.0), p(2.0, 2.0));
        assert_eq!(path.direction_at(0.0), None);
    }

    #[test]
    fn remaining_decreases() {
        let path = LPath::new(p(0.0, 0.0), p(3.0, 4.0), Axis::X);
        assert_eq!(path.remaining(0.0), 7.0);
        assert_eq!(path.remaining(3.0), 4.0);
        assert_eq!(path.remaining(7.0), 0.0);
        assert_eq!(path.remaining(42.0), 0.0);
    }

    #[test]
    fn alternate_swaps_axis_but_keeps_endpoints() {
        let path = LPath::new(p(0.0, 0.0), p(3.0, 4.0), Axis::X);
        let alt = path.alternate();
        assert_eq!(alt.start(), path.start());
        assert_eq!(alt.dest(), path.dest());
        assert_eq!(alt.first_axis(), Axis::Y);
        assert_eq!(alt.len(), path.len());
        assert_ne!(alt.corner(), path.corner());
        assert_eq!(alt.alternate(), path);
    }

    #[test]
    fn legs_are_consistent_with_point_at() {
        let path = LPath::new(p(1.0, 1.0), p(-2.0, 5.0), Axis::Y);
        let [l1, l2] = path.legs();
        assert_eq!(l1.start(), path.start());
        assert_eq!(l1.end(), path.corner());
        assert_eq!(l2.start(), path.corner());
        assert_eq!(l2.end(), path.dest());
        assert_eq!(l1.len() + l2.len(), path.len());
    }

    #[test]
    fn display() {
        let path = LPath::new(p(0.0, 0.0), p(1.0, 2.0), Axis::Y);
        assert_eq!(path.to_string(), "(0, 0) -> (0, 2) -> (1, 2)");
    }
}
