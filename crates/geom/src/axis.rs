//! Coordinate axes and the four cardinal directions.

use crate::Vec2;
use std::fmt;

/// One of the two coordinate axes.
///
/// The MRWP model chooses, with a fair coin, which axis an agent travels
/// *first*: the paper's path `P1 = ((x0,y0) -> (x0,y) -> (x,y))` moves along
/// [`Axis::Y`] first, `P2` along [`Axis::X`] first.
///
/// # Examples
///
/// ```
/// use fastflood_geom::Axis;
///
/// assert_eq!(Axis::X.other(), Axis::Y);
/// assert_eq!(Axis::Y.other(), Axis::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Axis {
    /// Horizontal axis.
    X,
    /// Vertical axis.
    Y,
}

impl Axis {
    /// Both axes, in `[X, Y]` order.
    pub const ALL: [Axis; 2] = [Axis::X, Axis::Y];

    /// The other axis.
    #[inline]
    pub fn other(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }

    /// Extracts this axis' coordinate from an `(x, y)` pair.
    #[inline]
    pub fn of(self, x: f64, y: f64) -> f64 {
        match self {
            Axis::X => x,
            Axis::Y => y,
        }
    }

    /// Unit vector along this axis (positive direction).
    #[inline]
    pub fn unit(self) -> Vec2 {
        match self {
            Axis::X => Vec2::new(1.0, 0.0),
            Axis::Y => Vec2::new(0.0, 1.0),
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::X => write!(f, "x"),
            Axis::Y => write!(f, "y"),
        }
    }
}

/// One of the four cardinal directions.
///
/// Used by the destination-distribution analysis (Theorem 2): conditioned on
/// its position, an MRWP agent's destination lies on one of the four
/// axis-parallel segments (the "cross") with probability 1/2 total, split
/// among the directions according to the `φ` formulas (Eqs. 4–5).
///
/// # Examples
///
/// ```
/// use fastflood_geom::{Cardinal, Axis};
///
/// assert_eq!(Cardinal::North.axis(), Axis::Y);
/// assert_eq!(Cardinal::West.sign(), -1.0);
/// assert_eq!(Cardinal::East.opposite(), Cardinal::West);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Cardinal {
    /// Positive `y`.
    North,
    /// Negative `y`.
    South,
    /// Positive `x`.
    East,
    /// Negative `x`.
    West,
}

impl Cardinal {
    /// All four directions, in `[North, South, East, West]` order.
    pub const ALL: [Cardinal; 4] = [
        Cardinal::North,
        Cardinal::South,
        Cardinal::East,
        Cardinal::West,
    ];

    /// The axis this direction moves along.
    #[inline]
    pub fn axis(self) -> Axis {
        match self {
            Cardinal::North | Cardinal::South => Axis::Y,
            Cardinal::East | Cardinal::West => Axis::X,
        }
    }

    /// `+1.0` for North/East, `-1.0` for South/West.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Cardinal::North | Cardinal::East => 1.0,
            Cardinal::South | Cardinal::West => -1.0,
        }
    }

    /// Unit vector pointing in this direction.
    #[inline]
    pub fn unit(self) -> Vec2 {
        self.axis().unit() * self.sign()
    }

    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Cardinal {
        match self {
            Cardinal::North => Cardinal::South,
            Cardinal::South => Cardinal::North,
            Cardinal::East => Cardinal::West,
            Cardinal::West => Cardinal::East,
        }
    }

    /// Classifies a displacement along `axis`: positive deltas map to
    /// North/East, negative to South/West. Returns `None` for a zero delta.
    pub fn from_delta(axis: Axis, delta: f64) -> Option<Cardinal> {
        if delta == 0.0 {
            return None;
        }
        Some(match (axis, delta > 0.0) {
            (Axis::X, true) => Cardinal::East,
            (Axis::X, false) => Cardinal::West,
            (Axis::Y, true) => Cardinal::North,
            (Axis::Y, false) => Cardinal::South,
        })
    }
}

impl fmt::Display for Cardinal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cardinal::North => write!(f, "N"),
            Cardinal::South => write!(f, "S"),
            Cardinal::East => write!(f, "E"),
            Cardinal::West => write!(f, "W"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_other_is_involution() {
        for a in Axis::ALL {
            assert_eq!(a.other().other(), a);
        }
    }

    #[test]
    fn axis_of_extracts_coordinate() {
        assert_eq!(Axis::X.of(3.0, 7.0), 3.0);
        assert_eq!(Axis::Y.of(3.0, 7.0), 7.0);
    }

    #[test]
    fn axis_units_are_orthonormal() {
        assert_eq!(Axis::X.unit().dot(Axis::Y.unit()), 0.0);
        assert_eq!(Axis::X.unit().norm(), 1.0);
        assert_eq!(Axis::Y.unit().norm(), 1.0);
    }

    #[test]
    fn cardinal_opposite_is_involution_and_flips_sign() {
        for c in Cardinal::ALL {
            assert_eq!(c.opposite().opposite(), c);
            assert_eq!(c.opposite().axis(), c.axis());
            assert_eq!(c.opposite().sign(), -c.sign());
        }
    }

    #[test]
    fn cardinal_units_match_sign_and_axis() {
        for c in Cardinal::ALL {
            let u = c.unit();
            assert_eq!(u.norm(), 1.0);
            assert_eq!(c.axis().of(u.x, u.y), c.sign());
        }
    }

    #[test]
    fn from_delta_classifies() {
        assert_eq!(Cardinal::from_delta(Axis::X, 2.0), Some(Cardinal::East));
        assert_eq!(Cardinal::from_delta(Axis::X, -0.1), Some(Cardinal::West));
        assert_eq!(Cardinal::from_delta(Axis::Y, 5.0), Some(Cardinal::North));
        assert_eq!(Cardinal::from_delta(Axis::Y, -5.0), Some(Cardinal::South));
        assert_eq!(Cardinal::from_delta(Axis::X, 0.0), None);
    }

    #[test]
    fn displays() {
        assert_eq!(Axis::X.to_string(), "x");
        assert_eq!(Cardinal::North.to_string(), "N");
        assert_eq!(Cardinal::West.to_string(), "W");
    }
}
