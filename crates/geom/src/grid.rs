//! The `m × m` square cell partition used by the Central-Zone analysis.

use crate::{GeomError, Point, Rect};
use std::fmt;

/// A cell of a [`CellGrid`], addressed by `(row, col)`.
///
/// `col` indexes the `x` direction and `row` the `y` direction; both count
/// from the south-west corner of the region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cell {
    /// Row index (`y` direction), `0` at the south edge.
    pub row: usize,
    /// Column index (`x` direction), `0` at the west edge.
    pub col: usize,
}

impl Cell {
    /// Creates a cell id from row and column indices.
    pub const fn new(row: usize, col: usize) -> Cell {
        Cell { row, col }
    }

    /// Grid (Chebyshev) distance to another cell.
    pub fn chebyshev(self, other: Cell) -> usize {
        let dr = self.row.abs_diff(other.row);
        let dc = self.col.abs_diff(other.col);
        dr.max(dc)
    }

    /// Whether `other` is one of this cell's 4 edge-adjacent neighbors.
    pub fn is_adjacent4(self, other: Cell) -> bool {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col) == 1
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(r{}, c{})", self.row, self.col)
    }
}

/// A partition of the square `[0, side]²` into `m × m` equal cells.
///
/// This is the paper's cell structure (§4): the square is split into cells
/// of side `ℓ = side/m` with `R/(1+√5) ≤ ℓ ≤ R/√5`, which guarantees that an
/// agent anywhere in a cell can transmit to any agent in the four adjacent
/// cells. Each cell has a *core*: the concentric subsquare of side `ℓ/3`
/// (an agent in the core cannot leave the cell in one step when
/// `v ≤ R/(3(1+√5))`, the paper's Ineq. 8).
///
/// # Examples
///
/// ```
/// use fastflood_geom::{Cell, CellGrid, Point};
///
/// let grid = CellGrid::new(10.0, 5)?; // cells of side 2
/// let c = grid.cell_of(Point::new(3.2, 9.9));
/// assert_eq!(c, Cell::new(4, 1));
/// assert_eq!(grid.rect_of(c).min(), Point::new(2.0, 8.0));
/// assert_eq!(grid.neighbors4(c).count(), 3); // top edge cell
/// # Ok::<(), fastflood_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellGrid {
    side: f64,
    m: usize,
    cell_len: f64,
}

impl CellGrid {
    /// Creates a grid over `[0, side]²` with `m` cells per axis.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::NonPositiveLength`] if `side` is not strictly
    /// positive and finite, and [`GeomError::ZeroSubdivision`] if `m == 0`.
    pub fn new(side: f64, m: usize) -> Result<CellGrid, GeomError> {
        if side <= 0.0 || !side.is_finite() {
            return Err(GeomError::NonPositiveLength(side));
        }
        if m == 0 {
            return Err(GeomError::ZeroSubdivision);
        }
        Ok(CellGrid {
            side,
            m,
            cell_len: side / m as f64,
        })
    }

    /// Side length of the covered square region.
    #[inline]
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Number of cells per axis.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Side length `ℓ` of one cell.
    #[inline]
    pub fn cell_len(&self) -> f64 {
        self.cell_len
    }

    /// Total number of cells (`m²`).
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.m * self.m
    }

    /// The covered region `[0, side]²`.
    pub fn region(&self) -> Rect {
        Rect::square(self.side).expect("side validated at construction")
    }

    /// The cell containing `p`.
    ///
    /// Points outside the region are clamped to the nearest cell, and points
    /// exactly on the north/east border belong to the last row/column, so
    /// every point maps to a valid cell.
    pub fn cell_of(&self, p: Point) -> Cell {
        let last = self.m - 1;
        let col = ((p.x / self.cell_len).floor().max(0.0) as usize).min(last);
        let row = ((p.y / self.cell_len).floor().max(0.0) as usize).min(last);
        Cell { row, col }
    }

    /// Flat index of `cell` in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    #[inline]
    pub fn index_of(&self, cell: Cell) -> usize {
        assert!(
            cell.row < self.m && cell.col < self.m,
            "cell {cell} out of range for m = {}",
            self.m
        );
        cell.row * self.m + cell.col
    }

    /// The cell with flat index `index` (inverse of [`CellGrid::index_of`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= m²`.
    #[inline]
    pub fn cell_at(&self, index: usize) -> Cell {
        assert!(index < self.num_cells(), "index {index} out of range");
        Cell {
            row: index / self.m,
            col: index % self.m,
        }
    }

    /// The closed rectangle covered by `cell`.
    pub fn rect_of(&self, cell: Cell) -> Rect {
        let min = Point::new(
            cell.col as f64 * self.cell_len,
            cell.row as f64 * self.cell_len,
        );
        let max = Point::new(min.x + self.cell_len, min.y + self.cell_len);
        Rect::new(min, max).expect("cell rect is well-formed")
    }

    /// The core of `cell`: the concentric subsquare of side `ℓ/3`.
    pub fn core_of(&self, cell: Cell) -> Rect {
        self.rect_of(cell)
            .shrink(self.cell_len / 3.0)
            .expect("ℓ/3 margin always fits inside the cell")
    }

    /// The south-west corner of `cell` (the `(x0, y0)` of Observation 5).
    pub fn sw_corner_of(&self, cell: Cell) -> Point {
        self.rect_of(cell).min()
    }

    /// Whether `cell` is valid for this grid.
    #[inline]
    pub fn contains_cell(&self, cell: Cell) -> bool {
        cell.row < self.m && cell.col < self.m
    }

    /// The 4 edge-adjacent neighbors of `cell` that exist in the grid.
    pub fn neighbors4(&self, cell: Cell) -> impl Iterator<Item = Cell> + '_ {
        let deltas: [(isize, isize); 4] = [(-1, 0), (1, 0), (0, -1), (0, 1)];
        self.offset_neighbors(cell, deltas)
    }

    /// The 8 edge- or corner-adjacent neighbors of `cell` that exist.
    pub fn neighbors8(&self, cell: Cell) -> impl Iterator<Item = Cell> + '_ {
        let deltas: [(isize, isize); 8] = [
            (-1, -1),
            (-1, 0),
            (-1, 1),
            (0, -1),
            (0, 1),
            (1, -1),
            (1, 0),
            (1, 1),
        ];
        self.offset_neighbors(cell, deltas)
    }

    fn offset_neighbors<const K: usize>(
        &self,
        cell: Cell,
        deltas: [(isize, isize); K],
    ) -> impl Iterator<Item = Cell> + '_ {
        let m = self.m as isize;
        deltas.into_iter().filter_map(move |(dr, dc)| {
            let r = cell.row as isize + dr;
            let c = cell.col as isize + dc;
            if r >= 0 && r < m && c >= 0 && c < m {
                Some(Cell::new(r as usize, c as usize))
            } else {
                None
            }
        })
    }

    /// Iterates over all cells in row-major order.
    pub fn cells(&self) -> CellIter {
        CellIter {
            m: self.m,
            next: 0,
            total: self.num_cells(),
        }
    }
}

impl fmt::Display for CellGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} grid over [0, {}]^2 (cell side {})",
            self.m, self.m, self.side, self.cell_len
        )
    }
}

/// Iterator over the cells of a [`CellGrid`] in row-major order.
///
/// Produced by [`CellGrid::cells`].
#[derive(Debug, Clone)]
pub struct CellIter {
    m: usize,
    next: usize,
    total: usize,
}

impl Iterator for CellIter {
    type Item = Cell;

    fn next(&mut self) -> Option<Cell> {
        if self.next >= self.total {
            return None;
        }
        let cell = Cell::new(self.next / self.m, self.next % self.m);
        self.next += 1;
        Some(cell)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.total - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for CellIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(CellGrid::new(0.0, 3).is_err());
        assert!(CellGrid::new(-1.0, 3).is_err());
        assert!(CellGrid::new(f64::NAN, 3).is_err());
        assert!(CellGrid::new(10.0, 0).is_err());
        let g = CellGrid::new(10.0, 4).unwrap();
        assert_eq!(g.cell_len(), 2.5);
        assert_eq!(g.num_cells(), 16);
    }

    #[test]
    fn cell_of_interior_and_borders() {
        let g = CellGrid::new(10.0, 5).unwrap();
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), Cell::new(0, 0));
        assert_eq!(g.cell_of(Point::new(1.99, 0.0)), Cell::new(0, 0));
        assert_eq!(g.cell_of(Point::new(2.0, 0.0)), Cell::new(0, 1));
        // north/east border points belong to the last row/column
        assert_eq!(g.cell_of(Point::new(10.0, 10.0)), Cell::new(4, 4));
        // out-of-region points clamp
        assert_eq!(g.cell_of(Point::new(-3.0, 42.0)), Cell::new(4, 0));
    }

    #[test]
    fn index_roundtrip() {
        let g = CellGrid::new(7.0, 3).unwrap();
        for i in 0..g.num_cells() {
            assert_eq!(g.index_of(g.cell_at(i)), i);
        }
        for cell in g.cells() {
            assert_eq!(g.cell_at(g.index_of(cell)), cell);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_of_panics_out_of_range() {
        let g = CellGrid::new(7.0, 3).unwrap();
        g.index_of(Cell::new(3, 0));
    }

    #[test]
    fn rect_of_tiles_region() {
        let g = CellGrid::new(9.0, 3).unwrap();
        let total_area: f64 = g.cells().map(|c| g.rect_of(c).area()).sum();
        assert!((total_area - 81.0).abs() < 1e-9);
        // a cell rect contains all points mapping to the cell
        let c = Cell::new(1, 2);
        let r = g.rect_of(c);
        assert_eq!(r.min(), Point::new(6.0, 3.0));
        assert_eq!(r.max(), Point::new(9.0, 6.0));
        assert_eq!(g.cell_of(r.center()), c);
    }

    #[test]
    fn core_is_centered_third() {
        let g = CellGrid::new(9.0, 3).unwrap();
        let c = Cell::new(0, 0);
        let core = g.core_of(c);
        assert!((core.width() - 1.0).abs() < 1e-12);
        assert_eq!(core.center(), g.rect_of(c).center());
        assert!(g.rect_of(c).contains_rect(&core));
    }

    #[test]
    fn neighbors_counts() {
        let g = CellGrid::new(10.0, 4).unwrap();
        // corner
        assert_eq!(g.neighbors4(Cell::new(0, 0)).count(), 2);
        assert_eq!(g.neighbors8(Cell::new(0, 0)).count(), 3);
        // edge
        assert_eq!(g.neighbors4(Cell::new(0, 1)).count(), 3);
        assert_eq!(g.neighbors8(Cell::new(0, 1)).count(), 5);
        // interior
        assert_eq!(g.neighbors4(Cell::new(1, 1)).count(), 4);
        assert_eq!(g.neighbors8(Cell::new(1, 1)).count(), 8);
        // 1x1 grid has no neighbors
        let g1 = CellGrid::new(1.0, 1).unwrap();
        assert_eq!(g1.neighbors8(Cell::new(0, 0)).count(), 0);
    }

    #[test]
    fn neighbors_are_adjacent_and_valid() {
        let g = CellGrid::new(10.0, 4).unwrap();
        for cell in g.cells() {
            for n in g.neighbors4(cell) {
                assert!(g.contains_cell(n));
                assert!(cell.is_adjacent4(n));
            }
            for n in g.neighbors8(cell) {
                assert!(g.contains_cell(n));
                assert_eq!(cell.chebyshev(n), 1);
            }
        }
    }

    #[test]
    fn cells_iter_is_exact() {
        let g = CellGrid::new(5.0, 3).unwrap();
        let cells: Vec<Cell> = g.cells().collect();
        assert_eq!(cells.len(), 9);
        assert_eq!(g.cells().len(), 9);
        assert_eq!(cells[0], Cell::new(0, 0));
        assert_eq!(cells[8], Cell::new(2, 2));
        // row-major: second element is (0, 1)
        assert_eq!(cells[1], Cell::new(0, 1));
    }

    #[test]
    fn cell_metrics() {
        assert_eq!(Cell::new(0, 0).chebyshev(Cell::new(2, 3)), 3);
        assert!(Cell::new(1, 1).is_adjacent4(Cell::new(1, 2)));
        assert!(!Cell::new(1, 1).is_adjacent4(Cell::new(2, 2)));
        assert!(!Cell::new(1, 1).is_adjacent4(Cell::new(1, 1)));
    }

    #[test]
    fn display() {
        let g = CellGrid::new(10.0, 4).unwrap();
        assert_eq!(g.to_string(), "4x4 grid over [0, 10]^2 (cell side 2.5)");
        assert_eq!(Cell::new(1, 2).to_string(), "(r1, c2)");
    }
}
