//! Uniform-grid spatial index for radius-bounded neighbor queries.
//!
//! The flooding simulator asks, every time step and for every non-informed
//! agent, "is any informed agent within Euclidean distance `R`?". With `n`
//! agents this must not be `O(n²)`. This crate provides:
//!
//! * [`GridIndex`] — an immutable bucket-grid index built in `O(n)`,
//!   answering radius queries by scanning only the buckets overlapping the
//!   query disk;
//! * [`GridIndexBuffer`] — the same grid in **reusable, allocation-free**
//!   form: retained CSR storage re-binned in place every rebuild, entries
//!   split into parallel `ids` / packed-coordinate arrays so the inner
//!   distance loop streams dense 16-byte pairs. This is the engine behind
//!   the flooding simulator's adaptive transmit path: it can index an
//!   arbitrary *subset* of an agent population (the transmitters or the
//!   shrinking uninformed set, whichever is smaller) without copying
//!   positions, and after warm-up a rebuild performs **zero heap
//!   allocations**;
//! * **incremental maintenance** — a buffer built with
//!   [`GridIndexBuffer::rebuild_incremental`] lays its CSR rows out with
//!   *slack capacity* and can then be kept in sync with a moving
//!   population by [`GridIndexBuffer::update_moved`]: one linear pass
//!   refreshes the cached coordinates and relocates only the (few)
//!   entries whose bucket changed, with `O(1)` membership removals and
//!   insertions on the side. When agents move far less than a bucket
//!   per step (the MRWP regime of the source paper) this replaces the
//!   scatter-bound full re-bin of both join sides — see
//!   `docs/ARCHITECTURE.md` ("Spatial layer contract") for the
//!   invariants;
//! * the **bucket join** — two buffers binned with a *shared* grid
//!   geometry ([`GridIndexBuffer::rebuild_subset_shared`]) can be joined
//!   bucket-against-bucket ([`GridIndexBuffer::join_covered_by`]):
//!   instead of issuing one scattered disk query per agent, the join
//!   walks the occupied buckets of one side
//!   ([`GridIndexBuffer::occupied_buckets`]) and resolves each against
//!   the ≤ 3×3 facing CSR slices of the other, with a cheap per-pair
//!   AABB distance prune. This is the transmit kernel of the flooding
//!   engine's dense large-`n` regime (cf. Clementi–Monti–Silvestri,
//!   *Fast Flooding over Manhattan*, PODC 2010);
//! * [`BruteForceIndex`] — a deliberately naive `O(n)`-per-query oracle
//!   used for correctness tests and baseline benches.
//!
//! # Examples
//!
//! ```
//! use fastflood_geom::{Point, Rect};
//! use fastflood_spatial::GridIndex;
//!
//! let region = Rect::square(100.0)?;
//! let pts = vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0), Point::new(50.0, 50.0)];
//! let index = GridIndex::build(region, 5.0, &pts)?;
//!
//! let mut hits = index.indices_within(Point::new(0.0, 0.0), 3.0);
//! hits.sort();
//! assert_eq!(hits, vec![0, 1]);
//! assert_eq!(index.count_within(Point::new(50.0, 50.0), 1.0), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fastflood_geom::{Point, Rect};
use fastflood_parallel::{run_ctx, WorkerPool};
use std::error::Error;
use std::fmt;

/// Error produced when building a spatial index from invalid inputs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpatialError {
    /// The bucket size must be strictly positive and finite.
    BadBucketSize(f64),
    /// A position had a NaN or infinite coordinate.
    NotFinite {
        /// Index of the offending point.
        index: usize,
    },
}

impl fmt::Display for SpatialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialError::BadBucketSize(v) => {
                write!(f, "bucket size must be positive and finite, got {v}")
            }
            SpatialError::NotFinite { index } => {
                write!(f, "position {index} has a non-finite coordinate")
            }
        }
    }
}

impl Error for SpatialError {}

/// Outcome of one [`GridIndexBuffer::update_moved`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Entries whose bucket changed and were relocated within the
    /// retained layout (swap-remove from the old row, append to the
    /// new row's slack).
    pub relocated: usize,
    /// Whether a row ran out of slack (or an insert found no room) and
    /// the whole layout was rebuilt in place with fresh slack. The
    /// re-layout runs entirely out of retained storage; `true` here
    /// signals amortized extra work, not an error.
    pub relayout: bool,
}

/// A uniform bucket-grid index over a fixed set of positions.
///
/// Buckets have side at least `bucket_size` (the requested size, enlarged
/// so that an integer number of buckets tiles the region). Queries with
/// radius `r ≤ bucket_size` touch at most a 3×3 block of buckets; larger
/// radii are supported and scan proportionally more buckets.
///
/// Build time and memory are `O(n + buckets)`; the number of buckets per
/// axis is capped near `2·√n` so memory never dominates, even for tiny
/// bucket sizes.
#[derive(Debug, Clone)]
pub struct GridIndex {
    region: Rect,
    m: usize,
    bucket_len: f64,
    /// CSR layout: `starts[b]..starts[b+1]` indexes `entries` for bucket `b`.
    starts: Vec<u32>,
    /// `(original index, position)` sorted by bucket, position copied for
    /// cache-friendly distance checks.
    entries: Vec<(u32, Point)>,
}

impl GridIndex {
    /// Builds an index over `positions` with buckets of side at least
    /// `bucket_size`.
    ///
    /// Positions outside `region` are clamped into the border buckets (the
    /// simulator keeps agents inside the region; clamping makes the index
    /// total rather than partial).
    ///
    /// # Errors
    ///
    /// * [`SpatialError::BadBucketSize`] — non-positive or non-finite size;
    /// * [`SpatialError::NotFinite`] — a position with NaN/infinite
    ///   coordinates.
    pub fn build(
        region: Rect,
        bucket_size: f64,
        positions: &[Point],
    ) -> Result<GridIndex, SpatialError> {
        if bucket_size <= 0.0 || !bucket_size.is_finite() {
            return Err(SpatialError::BadBucketSize(bucket_size));
        }
        if let Some(index) = positions.iter().position(|p| !p.is_finite()) {
            return Err(SpatialError::NotFinite { index });
        }
        let side = region.width().max(region.height());
        // buckets of side >= bucket_size; cap count so memory stays O(n)
        let cap = (2.0 * (positions.len().max(1) as f64).sqrt()).ceil() as usize + 1;
        let m = ((side / bucket_size).floor() as usize).clamp(1, cap.max(1));
        let bucket_len_x = region.width() / m as f64;
        let bucket_len_y = region.height() / m as f64;
        // the region is square in all simulator uses; keep one length
        let bucket_len = bucket_len_x.max(bucket_len_y);

        let bucket_of = |p: Point| -> usize {
            let cx = (((p.x - region.min().x) / bucket_len_x).floor().max(0.0) as usize).min(m - 1);
            let cy = (((p.y - region.min().y) / bucket_len_y).floor().max(0.0) as usize).min(m - 1);
            cy * m + cx
        };

        let mut counts = vec![0u32; m * m + 1];
        for &p in positions {
            counts[bucket_of(p) + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut entries = vec![(0u32, Point::ORIGIN); positions.len()];
        for (i, &p) in positions.iter().enumerate() {
            let b = bucket_of(p);
            let at = cursor[b] as usize;
            entries[at] = (i as u32, p);
            cursor[b] += 1;
        }
        Ok(GridIndex {
            region,
            m,
            bucket_len,
            starts,
            entries,
        })
    }

    /// Builds an index sized for radius-`r` queries (`bucket_size = r`).
    ///
    /// # Errors
    ///
    /// As [`GridIndex::build`].
    pub fn for_radius(
        region: Rect,
        r: f64,
        positions: &[Point],
    ) -> Result<GridIndex, SpatialError> {
        GridIndex::build(region, r, positions)
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The indexed region.
    #[inline]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Effective bucket side length.
    #[inline]
    pub fn bucket_len(&self) -> f64 {
        self.bucket_len
    }

    /// Buckets per axis.
    #[inline]
    pub fn buckets_per_axis(&self) -> usize {
        self.m
    }

    fn bucket_range(&self, lo: f64, origin: f64, extent: f64) -> usize {
        let len = extent / self.m as f64;
        (((lo - origin) / len).floor().max(0.0) as usize).min(self.m - 1)
    }

    /// Calls `f(index, position)` for every point within Euclidean distance
    /// `r` of `p` (inclusive).
    pub fn for_each_within<F: FnMut(usize, Point)>(&self, p: Point, r: f64, mut f: F) {
        self.visit_within(p, r, |i, q| {
            f(i, q);
            true
        });
    }

    /// Visits points within distance `r` of `p`, stopping early when
    /// `f` returns `false`. Returns `false` iff the scan was stopped early.
    pub fn visit_within<F: FnMut(usize, Point) -> bool>(&self, p: Point, r: f64, mut f: F) -> bool {
        debug_assert!(r >= 0.0, "query radius must be nonnegative");
        let r2 = r * r;
        let min = self.region.min();
        let w = self.region.width();
        let h = self.region.height();
        let cx0 = self.bucket_range(p.x - r, min.x, w);
        let cx1 = self.bucket_range(p.x + r, min.x, w);
        let cy0 = self.bucket_range(p.y - r, min.y, h);
        let cy1 = self.bucket_range(p.y + r, min.y, h);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let b = cy * self.m + cx;
                let lo = self.starts[b] as usize;
                let hi = self.starts[b + 1] as usize;
                for &(i, q) in &self.entries[lo..hi] {
                    if p.euclid_sq(q) <= r2 && !f(i as usize, q) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Indices of all points within distance `r` of `p` (unordered).
    pub fn indices_within(&self, p: Point, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(p, r, |i, _| out.push(i));
        out
    }

    /// Number of points within distance `r` of `p`.
    pub fn count_within(&self, p: Point, r: f64) -> usize {
        let mut n = 0;
        self.for_each_within(p, r, |_, _| n += 1);
        n
    }

    /// Whether any point within distance `r` of `p` satisfies `pred`.
    ///
    /// Scans stop at the first hit, which makes the
    /// "does an informed agent cover me?" check in the flooding engine
    /// sublinear on average.
    pub fn any_within<F: FnMut(usize) -> bool>(&self, p: Point, r: f64, mut pred: F) -> bool {
        !self.visit_within(p, r, |i, _| !pred(i))
    }

    /// The index and distance of the point nearest to `p`, or `None` for
    /// an empty index.
    ///
    /// Searches expanding rings of buckets, so typical cost is a handful
    /// of buckets rather than the whole index.
    pub fn nearest(&self, p: Point) -> Option<(usize, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        let mut radius = self.bucket_len;
        let diameter = (self.region.width().powi(2) + self.region.height().powi(2)).sqrt()
            + self.region.distance(p) * 2.0
            + self.bucket_len;
        loop {
            self.for_each_within(p, radius, |i, q| {
                let d = p.euclid(q);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            });
            // a hit within the scanned radius is provably the global
            // nearest once radius covers its distance
            if let Some((_, d)) = best {
                if d <= radius {
                    return best;
                }
            }
            if radius > diameter {
                return best;
            }
            radius *= 2.0;
        }
    }

    /// Calls `f(i, j)` once for every unordered pair of distinct points at
    /// Euclidean distance at most `r`, with `i < j`.
    ///
    /// # Panics
    ///
    /// Panics if `r` exceeds the bucket side (`bucket_len`): the
    /// half-neighborhood sweep would miss pairs. Build the index with
    /// `bucket_size >= r` (e.g. via [`GridIndex::for_radius`]).
    pub fn for_each_pair_within<F: FnMut(usize, usize)>(&self, r: f64, mut f: F) {
        assert!(
            r <= self.bucket_len * (1.0 + 1e-12),
            "pair query radius {r} exceeds bucket side {}",
            self.bucket_len
        );
        let r2 = r * r;
        let m = self.m;
        for cy in 0..m {
            for cx in 0..m {
                let b = cy * m + cx;
                let lo = self.starts[b] as usize;
                let hi = self.starts[b + 1] as usize;
                let bucket = &self.entries[lo..hi];
                // pairs inside the bucket
                for (k, &(i, pi)) in bucket.iter().enumerate() {
                    for &(j, pj) in &bucket[k + 1..] {
                        if pi.euclid_sq(pj) <= r2 {
                            emit(&mut f, i, j);
                        }
                    }
                }
                // half neighborhood: E, NW, N, NE — covers each bucket pair once
                for (dx, dy) in [(1isize, 0isize), (-1, 1), (0, 1), (1, 1)] {
                    let nx = cx as isize + dx;
                    let ny = cy as isize + dy;
                    if nx < 0 || ny < 0 || nx >= m as isize || ny >= m as isize {
                        continue;
                    }
                    let nb = ny as usize * m + nx as usize;
                    let nlo = self.starts[nb] as usize;
                    let nhi = self.starts[nb + 1] as usize;
                    for &(i, pi) in bucket {
                        for &(j, pj) in &self.entries[nlo..nhi] {
                            if pi.euclid_sq(pj) <= r2 {
                                emit(&mut f, i, j);
                            }
                        }
                    }
                }
            }
        }

        fn emit<F: FnMut(usize, usize)>(f: &mut F, a: u32, b: u32) {
            let (a, b) = (a as usize, b as usize);
            if a < b {
                f(a, b);
            } else {
                f(b, a);
            }
        }
    }
}

/// A reusable bucket-grid index with retained storage and SoA entries.
///
/// Where [`GridIndex::build`] allocates fresh CSR vectors on every call,
/// a `GridIndexBuffer` is rebuilt **in place**: bucket tables and entry
/// arrays keep their capacity across rebuilds, so a simulation loop that
/// re-bins moving points every step performs no steady-state heap
/// allocations. Entries are stored as parallel `ids`/`xs`/`ys` arrays
/// (structure-of-arrays), which keeps the hot distance loop on flat
/// `f64` data.
///
/// The buffer can index an arbitrary subset of a larger population via
/// [`GridIndexBuffer::rebuild_subset`]; queries then report the original
/// population ids. The bucket count per axis adapts to the subset size
/// (capped near `2·√k` for `k` indexed points) so small frontiers get
/// proportionally small bucket tables. When two subsets of the same
/// population must be compared bucket-against-bucket, rebuild both with
/// [`GridIndexBuffer::rebuild_subset_shared`] (which derives the
/// geometry from an explicit population count instead of the subset
/// size) and join them with [`GridIndexBuffer::join_covered_by`].
///
/// When the indexed population moves only a small fraction of a bucket
/// per step, skip the per-step full re-bin entirely: build once with
/// [`GridIndexBuffer::rebuild_incremental`] (a slack-capacity variant
/// of the same layout) and keep the buffer in sync with
/// [`GridIndexBuffer::update_moved`].
///
/// # Examples
///
/// ```
/// use fastflood_geom::{Point, Rect};
/// use fastflood_spatial::GridIndexBuffer;
///
/// let region = Rect::square(100.0)?;
/// let pts = vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0), Point::new(90.0, 90.0)];
/// let mut buf = GridIndexBuffer::new();
/// buf.rebuild_subset(region, 5.0, &pts, &[0, 2])?; // index points 0 and 2 only
/// assert!(buf.any_within(Point::new(0.0, 0.0), 2.0));
/// assert!(!buf.any_within(Point::new(2.0, 2.0), 0.5)); // 1 not indexed
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct GridIndexBuffer {
    region: Rect,
    m: usize,
    bucket_len_x: f64,
    bucket_len_y: f64,
    /// CSR layout: bucket `b` owns the entry-array *slots*
    /// `starts[b]..starts[b+1]`. In a tight layout every slot is live;
    /// in a slack (incremental) layout only the prefix up to `ends[b]`
    /// is, the rest is spare insertion room.
    starts: Vec<u32>,
    /// Live end of each bucket row: entries of bucket `b` occupy
    /// `starts[b]..ends[b]`. Tight rebuilds set `ends[b] ==
    /// starts[b + 1]`; incremental updates move it within the row's
    /// slot range. Every query path reads rows through this bound, so
    /// slack slots are never observed.
    ends: Vec<u32>,
    /// Binning cursor, retained to avoid reallocating each rebuild.
    cursor: Vec<u32>,
    /// Entries sorted by bucket, ids and packed coordinates in parallel
    /// arrays: the distance loop streams dense 16-byte coordinate pairs
    /// and touches `ids` only on hits, while a rebuild's scatter pass
    /// writes two cache lines per point instead of three.
    ids: Vec<u32>,
    pts: Vec<(f64, f64)>,
    /// Gather scratch: subset coordinates copied densely before binning,
    /// so the two binning passes read sequentially and pay the
    /// `positions[id]` indirection exactly once per point.
    gather: Vec<(f64, f64)>,
    /// Per-point bucket index computed in the counting pass and reused
    /// by the scatter pass, so the clamp/truncate math runs once per
    /// point instead of twice.
    bkt: Vec<u32>,
    /// Buckets holding at least one point, ascending — the worklist of
    /// the bucket join (built for free inside the prefix-sum pass, and
    /// re-derived after every incremental update).
    occupied: Vec<u32>,
    /// Incremental mode only: remaining *expected-arrival headroom* per
    /// bucket — row capacity pre-reserved for ids announced via
    /// `rebuild_incremental`'s `expected` list, decremented as arrivals
    /// land. Keeps a grid whose membership grows monotonically (the
    /// transmit roster) from overflowing its rows on every frontier
    /// advance; honored by re-layouts.
    extra: Vec<u32>,
    /// Incremental mode only: `slot_of[id]` is the entry slot currently
    /// holding original id `id` (`u32::MAX` when not indexed), the
    /// `O(1)` handle behind removals and swap-relocations. Entries for
    /// ids outside the indexed subset are stale garbage and must never
    /// be read — callers name ids explicitly, so they never are.
    slot_of: Vec<u32>,
    /// Incremental mode only: entries displaced by a full row (plus
    /// inserts that found no room), parked here until the end-of-update
    /// re-layout re-files them. Always empty between calls.
    pending: Vec<(u32, f64, f64)>,
    /// Frontier-band filter of the stale join: `band_stamp[b] ==
    /// band_epoch` marks bucket `b` as lying in the 3×3 neighborhood of
    /// an occupied bucket of the *other* side, computed when the other
    /// side occupies fewer buckets so the join can skip the rest of this
    /// side's occupied list with one read each. Epoch-stamped (no
    /// per-join clear); entries from older joins or geometries hold
    /// smaller epochs and can never collide.
    band_stamp: Vec<u32>,
    band_epoch: u32,
    /// Whether the current layout is a slack layout with a live slot
    /// map (built by `rebuild_incremental`, required by `update_moved`).
    incremental: bool,
    /// Cumulative full re-layouts taken by incremental updates (the
    /// slack-overflow fallback); a diagnostic for tests and tuning.
    relayouts: u64,
    /// Parallel-join output scratch: per-shard disjoint regions sized by
    /// each shard's live entry count, compacted into the caller's output
    /// in canonical shard order. Grow-only; pre-sized by
    /// [`GridIndexBuffer::reserve_parallel`].
    par_out: Vec<u32>,
    /// Parallel-refresh relocation scratch: per-shard regions of
    /// `(id, x, y, new_bucket)` bucket-crossers, re-filed sequentially
    /// after the sharded row pass.
    par_moves: Vec<(u32, f64, f64, u32)>,
    /// Parallel-refresh slot-map fixups `(id, slot)` deferred out of the
    /// sharded pass (slot-map writes are scattered by id, so they are
    /// applied in canonical shard order afterwards).
    par_fixups: Vec<(u32, u32)>,
    len: usize,
}

/// Ceiling on parallel shards of the sharded join/refresh passes: keeps
/// the per-call shard descriptors on the stack (no per-step allocation)
/// while still letting a wide pool split the work 2–4 ways per thread.
const MAX_PAR_SHARDS: usize = 32;

impl Default for GridIndexBuffer {
    fn default() -> GridIndexBuffer {
        GridIndexBuffer::new()
    }
}

impl GridIndexBuffer {
    /// Pre-allocates storage for rebuilds of up to `points` points, so
    /// no later rebuild of that size or smaller allocates at all.
    ///
    /// The reservation also covers the incremental machinery
    /// ([`GridIndexBuffer::rebuild_incremental`] /
    /// [`GridIndexBuffer::update_moved`]): the slack layout's spare
    /// slots (including expected-arrival headroom, for
    /// `subset + expected` totals up to `points`), the id→slot map,
    /// and the overflow scratch — for populations and
    /// `geometry_points` of up to `points`, provided the slack layout's
    /// geometry has at most `points/4` rows. Slack layouts are built
    /// with coarse buckets (several radii per side — the join
    /// geometries), where rows ≪ points; reserving the constant
    /// per-row slack floor across the *finest* possible table instead
    /// would cost ~32·points slots up front for a layout shape that is
    /// never built. A finer-than-`points/4`-rows slack layout simply
    /// allocates on first build and retains the storage afterwards.
    pub fn reserve(&mut self, points: usize) {
        let (table, slots) = Self::reserve_bounds(points);
        self.starts.reserve(table.saturating_sub(self.starts.len()));
        self.ends.reserve(table.saturating_sub(self.ends.len()));
        self.extra.reserve(table.saturating_sub(self.extra.len()));
        self.cursor.reserve(table.saturating_sub(self.cursor.len()));
        self.ids.reserve(slots.saturating_sub(self.ids.len()));
        self.pts.reserve(slots.saturating_sub(self.pts.len()));
        self.gather
            .reserve(points.saturating_sub(self.gather.len()));
        self.bkt.reserve(points.saturating_sub(self.bkt.len()));
        self.slot_of
            .reserve(points.saturating_sub(self.slot_of.len()));
        self.pending
            .reserve(points.saturating_sub(self.pending.len()));
        self.band_stamp
            .reserve(table.saturating_sub(self.band_stamp.len()));
        // at most one occupied bucket per point (and never more than the
        // bucket table itself)
        self.occupied
            .reserve(points.min(table).saturating_sub(self.occupied.len()));
    }

    /// The worst-case `(bucket_table, entry_slots)` sizes behind
    /// [`GridIndexBuffer::reserve`] and
    /// [`GridIndexBuffer::reserve_parallel`] — one formula, so the two
    /// reservations cannot drift apart when the slack policy
    /// ([`slack_cap`]) is tuned. The slot bound is the worst-case slack
    /// layout: every row keeps `count/4 + 8` spare slots, so entry
    /// storage tops out at `points + points/4 + 8·rows`, the per-row
    /// floor term bounded by the coarse-geometry row counts described
    /// on `reserve`.
    fn reserve_bounds(points: usize) -> (usize, usize) {
        let cap = (2.0 * (points.max(1) as f64).sqrt()).ceil() as usize + 1;
        let table = cap * cap + 1;
        let slots = points + points / 4 + 8 * table.min(points / 4 + 1);
        (table, slots)
    }

    /// Creates an empty buffer; storage grows on first rebuild and is
    /// retained afterwards.
    pub fn new() -> GridIndexBuffer {
        GridIndexBuffer {
            region: Rect::square(1.0).expect("unit square is valid"),
            m: 1,
            bucket_len_x: 1.0,
            bucket_len_y: 1.0,
            starts: Vec::new(),
            ends: Vec::new(),
            cursor: Vec::new(),
            ids: Vec::new(),
            pts: Vec::new(),
            gather: Vec::new(),
            bkt: Vec::new(),
            occupied: Vec::new(),
            extra: Vec::new(),
            slot_of: Vec::new(),
            pending: Vec::new(),
            band_stamp: Vec::new(),
            band_epoch: 0,
            incremental: false,
            relayouts: 0,
            par_out: Vec::new(),
            par_moves: Vec::new(),
            par_fixups: Vec::new(),
            len: 0,
        }
    }

    /// Pre-sizes the parallel-path scratch (sharded join output,
    /// sharded refresh relocation/fixup regions) for populations of up
    /// to `points`, so parallel joins and refreshes are allocation-free
    /// from the first call. Complements [`GridIndexBuffer::reserve`]
    /// (which covers the sequential machinery); callers that never use
    /// the `_par` entry points need not call this — the scratch also
    /// grows on demand and is retained.
    ///
    /// The relocation/fixup regions are sized by the slack layout's
    /// **slot** total (every live entry could cross a bucket boundary in
    /// one refresh), the same bound `reserve` uses for the entry arrays.
    pub fn reserve_parallel(&mut self, points: usize) {
        let (_, slots) = Self::reserve_bounds(points);
        if self.par_out.len() < points {
            self.par_out.resize(points, 0);
        }
        if self.par_moves.len() < slots {
            self.par_moves.resize(slots, (0, 0.0, 0.0, 0));
        }
        if self.par_fixups.len() < slots {
            self.par_fixups.resize(slots, (0, 0));
        }
    }

    /// Re-bins every position into the buffer (ids `0..positions.len()`).
    ///
    /// # Errors
    ///
    /// As [`GridIndex::build`].
    pub fn rebuild(
        &mut self,
        region: Rect,
        bucket_size: f64,
        positions: &[Point],
    ) -> Result<(), SpatialError> {
        self.rebuild_inner(region, bucket_size, positions, None, None, None)
    }

    /// Re-bins only the positions selected by `subset` (original indices
    /// into `positions`); queries report those original indices.
    ///
    /// # Errors
    ///
    /// As [`GridIndex::build`]. A subset id out of bounds of `positions`
    /// panics.
    pub fn rebuild_subset(
        &mut self,
        region: Rect,
        bucket_size: f64,
        positions: &[Point],
        subset: &[u32],
    ) -> Result<(), SpatialError> {
        self.rebuild_inner(region, bucket_size, positions, Some(subset), None, None)
    }

    /// Like [`GridIndexBuffer::rebuild_subset`], but derives the grid
    /// geometry (buckets per axis) from `geometry_points` instead of the
    /// subset length.
    ///
    /// Two buffers rebuilt over the same `region` / `bucket_size` /
    /// `geometry_points` triple have **identical bucket layouts**, which
    /// is the precondition of [`GridIndexBuffer::join_covered_by`]: bin
    /// the two sides of a join with the size of their *common population*
    /// (so the bucket resolution doesn't degrade as one side shrinks),
    /// then join bucket-against-bucket.
    ///
    /// # Examples
    ///
    /// ```
    /// use fastflood_geom::{Point, Rect};
    /// use fastflood_spatial::GridIndexBuffer;
    ///
    /// let region = Rect::square(100.0)?;
    /// let pts = vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0), Point::new(90.0, 90.0)];
    /// let (mut a, mut b) = (GridIndexBuffer::new(), GridIndexBuffer::new());
    /// a.rebuild_subset_shared(region, 5.0, &pts, &[0], pts.len())?;
    /// b.rebuild_subset_shared(region, 5.0, &pts, &[1, 2], pts.len())?;
    /// assert_eq!(a.buckets_per_axis(), b.buckets_per_axis());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// As [`GridIndex::build`]. A subset id out of bounds of `positions`
    /// panics.
    pub fn rebuild_subset_shared(
        &mut self,
        region: Rect,
        bucket_size: f64,
        positions: &[Point],
        subset: &[u32],
        geometry_points: usize,
    ) -> Result<(), SpatialError> {
        self.rebuild_inner(
            region,
            bucket_size,
            positions,
            Some(subset),
            Some(geometry_points),
            None,
        )
    }

    /// Like [`GridIndexBuffer::rebuild_subset_shared`], but lays the CSR
    /// rows out with **slack capacity** (each bucket keeps `count/4 + 8`
    /// spare slots) and builds an id→slot map, arming the buffer for
    /// [`GridIndexBuffer::update_moved`].
    ///
    /// `expected` announces ids likely to be *inserted later* (they are
    /// **not** indexed now): each reserves one extra slot in the row its
    /// current position bins to, consumed as arrivals land and honored
    /// by overflow re-layouts. A membership that only grows — the
    /// flooding engine's transmit roster, fed by the shrinking
    /// uninformed set — would otherwise exhaust any constant slack on
    /// every frontier advance and re-layout each step; with its future
    /// members announced, rows absorb the whole flood. Pass `&[]` when
    /// membership shrinks or churns symmetrically. (Positions of
    /// `expected` ids are a capacity hint only; non-finite ones are
    /// tolerated.)
    ///
    /// Queries and [`GridIndexBuffer::join_covered_by`] behave exactly
    /// as after a tight rebuild — every read path walks the *live*
    /// prefix of each row, never the slack — and the grid geometry is
    /// derived from `geometry_points` the same way, so an incremental
    /// buffer joins against tight shared-geometry buffers freely.
    ///
    /// # Examples
    ///
    /// ```
    /// use fastflood_geom::{Point, Rect};
    /// use fastflood_spatial::GridIndexBuffer;
    ///
    /// let region = Rect::square(100.0)?;
    /// let mut pts = vec![Point::new(1.0, 1.0), Point::new(40.0, 40.0)];
    /// let mut buf = GridIndexBuffer::new();
    /// buf.rebuild_incremental(region, 5.0, &pts, &[0, 1], pts.len(), &[])?;
    ///
    /// // agents drift; only bucket-crossers get relocated
    /// pts[0] = Point::new(1.5, 1.0);
    /// pts[1] = Point::new(41.0, 40.0);
    /// buf.update_moved(&pts, &[], &[])?;
    /// assert!(buf.any_within(Point::new(1.5, 1.0), 0.1));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// As [`GridIndex::build`]. A subset id out of bounds of `positions`
    /// panics.
    pub fn rebuild_incremental(
        &mut self,
        region: Rect,
        bucket_size: f64,
        positions: &[Point],
        subset: &[u32],
        geometry_points: usize,
        expected: &[u32],
    ) -> Result<(), SpatialError> {
        self.rebuild_inner(
            region,
            bucket_size,
            positions,
            Some(subset),
            Some(geometry_points),
            Some(expected),
        )
    }

    /// Shared rebuild: `expected` is `None` for a tight layout, or
    /// `Some(arrival hints)` for a slack (incremental) layout.
    fn rebuild_inner(
        &mut self,
        region: Rect,
        bucket_size: f64,
        positions: &[Point],
        subset: Option<&[u32]>,
        geometry_points: Option<usize>,
        expected: Option<&[u32]>,
    ) -> Result<(), SpatialError> {
        let slack = expected.is_some();
        if bucket_size <= 0.0 || !bucket_size.is_finite() {
            return Err(SpatialError::BadBucketSize(bucket_size));
        }
        let k = subset.map_or(positions.len(), <[u32]>::len);
        // size the grid by the SHORTER side so the bucket side is at
        // least `bucket_size` on both axes — the neighborhood guarantees
        // of radius-`bucket_size` queries and of the bucket join hold on
        // non-square regions too
        let side = region.width().min(region.height());
        let geo = geometry_points.unwrap_or(k);
        let cap = (2.0 * (geo.max(1) as f64).sqrt()).ceil() as usize + 1;
        let m = ((side / bucket_size).floor() as usize).clamp(1, cap.max(1));
        self.region = region;
        self.m = m;
        self.bucket_len_x = region.width() / m as f64;
        self.bucket_len_y = region.height() / m as f64;
        self.len = k;
        self.incremental = false;
        self.pending.clear();

        // retained-capacity resizes: no allocation once warmed up. The
        // bucket table must be zeroed (counts accumulate into it); the
        // entry arrays only ever *grow* — the scatter pass overwrites
        // exactly the live slots, and every query range stays within a
        // row's live prefix, so stale entries are never read and the
        // ~1 MB-per-rebuild memset of a clear-and-resize is avoided.
        self.starts.clear();
        self.starts.resize(m * m + 1, 0);

        let min = region.min();
        let inv_x = 1.0 / self.bucket_len_x;
        let inv_y = 1.0 / self.bucket_len_y;
        // the shared binning formula with the reciprocals hoisted out
        // of the hot loops
        let bucket_of = |x: f64, y: f64| -> usize { bin(x, y, min, inv_x, inv_y, m) };

        // pass 1, fused gather + count: pay the `positions[id]`
        // indirection once, validate, record the bucket of each point
        // (the scatter pass reuses it) and count bucket sizes
        self.gather.clear();
        self.bkt.clear();
        let mut bad: Option<usize> = None;
        match subset {
            Some(sub) => {
                for &id in sub {
                    let p = positions[id as usize];
                    if !p.is_finite() {
                        bad = Some(id as usize);
                        break;
                    }
                    let b = bucket_of(p.x, p.y);
                    self.gather.push((p.x, p.y));
                    self.bkt.push(b as u32);
                    self.starts[b + 1] += 1;
                }
            }
            None => {
                for (id, p) in positions.iter().enumerate() {
                    if !p.is_finite() {
                        bad = Some(id);
                        break;
                    }
                    let b = bucket_of(p.x, p.y);
                    self.gather.push((p.x, p.y));
                    self.bkt.push(b as u32);
                    self.starts[b + 1] += 1;
                }
            }
        }
        if let Some(index) = bad {
            self.degrade_to_empty();
            return Err(SpatialError::NotFinite { index });
        }
        // prefix sums; the occupied-bucket list falls out of the same
        // pass, already sorted ascending. The slack variant widens each
        // row by `slack_cap` plus expected-arrival headroom and records
        // the live end separately.
        if slack {
            // expected-arrival headroom: one pre-reserved slot per
            // announced id, in the row its current position bins to
            self.extra.clear();
            self.extra.resize(m * m, 0);
            for &id in expected.unwrap_or(&[]) {
                self.extra[bucket_of(positions[id as usize].x, positions[id as usize].y)] += 1;
            }
            self.slack_prefix_from_counts();
            if self.slot_of.len() < positions.len() {
                // grow-only; stale values behind non-member ids are
                // never read (diff lists name member ids only)
                self.slot_of.resize(positions.len(), u32::MAX);
            }
        } else {
            self.occupied.clear();
            self.ends.clear();
            for b in 1..self.starts.len() {
                if self.starts[b] > 0 {
                    self.occupied.push((b - 1) as u32);
                }
                self.starts[b] += self.starts[b - 1];
            }
            self.ends.extend_from_slice(&self.starts[1..]);
            // grow-only entry storage sized to the slot total (== k)
            let slots = self.starts[m * m] as usize;
            if self.ids.len() < slots {
                self.ids.resize(slots, 0);
            }
            if self.pts.len() < slots {
                self.pts.resize(slots, (0.0, 0.0));
            }
            self.cursor.clear();
            self.cursor.extend_from_slice(&self.starts[..m * m]);
        }
        // pass 2: scatter, reusing the cached bucket indices
        match subset {
            Some(sub) => {
                for ((&b, &xy), &id) in self.bkt.iter().zip(&self.gather).zip(sub) {
                    let at = self.cursor[b as usize] as usize;
                    self.cursor[b as usize] += 1;
                    self.ids[at] = id;
                    self.pts[at] = xy;
                    if slack {
                        self.slot_of[id as usize] = at as u32;
                    }
                }
            }
            None => {
                for (i, (&b, &xy)) in self.bkt.iter().zip(&self.gather).enumerate() {
                    let at = self.cursor[b as usize] as usize;
                    self.cursor[b as usize] += 1;
                    self.ids[at] = i as u32;
                    self.pts[at] = xy;
                    if slack {
                        self.slot_of[i] = at as u32;
                    }
                }
            }
        }
        self.incremental = slack;
        Ok(())
    }

    /// Collapses the buffer to an empty index after a failed rebuild or
    /// update: counts/rows were partially mutated, so zero the tables
    /// and the length — a caller that catches the error and queries
    /// anyway sees nothing rather than stale entries behind garbage
    /// ranges.
    fn degrade_to_empty(&mut self) {
        self.len = 0;
        self.occupied.clear();
        self.pending.clear();
        self.incremental = false;
        for s in &mut self.starts {
            *s = 0;
        }
        for e in &mut self.ends {
            *e = 0;
        }
    }

    /// Row-major bucket of a (possibly out-of-region, clamped)
    /// coordinate pair under the current geometry — the shared [`bin`]
    /// formula (`1.0 / len` reproduces the exact reciprocals the hot
    /// loops hoist, so every path agrees bit-for-bit).
    #[inline]
    fn bucket_index(&self, x: f64, y: f64) -> usize {
        bin(
            x,
            y,
            self.region.min(),
            1.0 / self.bucket_len_x,
            1.0 / self.bucket_len_y,
            self.m,
        )
    }

    /// Removes one indexed id in `O(1)`: slot-map lookup, swap-remove
    /// within the row its **cached** coordinates bin to (the coherence
    /// invariant — valid however stale the cache is).
    #[inline]
    fn remove_one(&mut self, id: u32) {
        let slot = self.slot_of[id as usize] as usize;
        debug_assert!(
            slot < self.ids.len() && self.ids[slot] == id,
            "removed id {id} is not indexed"
        );
        let (x, y) = self.pts[slot];
        let b = self.bucket_index(x, y);
        debug_assert!(
            (self.starts[b] as usize..self.ends[b] as usize).contains(&slot),
            "slot map points outside the entry's row"
        );
        let last = self.ends[b] as usize - 1;
        self.ids[slot] = self.ids[last];
        self.pts[slot] = self.pts[last];
        self.slot_of[self.ids[slot] as usize] = slot as u32;
        self.ends[b] = last as u32;
        self.slot_of[id as usize] = u32::MAX;
        self.len -= 1;
        if last == self.starts[b] as usize {
            // non-empty → empty transition keeps `occupied` exact
            // without any table scan (rare: O(occupied) memmove)
            if let Ok(i) = self.occupied.binary_search(&(b as u32)) {
                self.occupied.remove(i);
            }
        }
    }

    /// Re-derives the occupied-bucket list (ascending for free) with one
    /// sequential scan of the row table. Only the paths that already do
    /// `O(len)` work use this; membership surgery maintains the list
    /// incrementally on empty↔non-empty row transitions instead, so
    /// deferred steps stay `O(churn)`.
    fn rescan_occupied(&mut self) {
        self.occupied.clear();
        for b in 0..self.m * self.m {
            if self.ends[b] > self.starts[b] {
                self.occupied.push(b as u32);
            }
        }
    }

    /// Membership-only resynchronization of a slack layout: `O(1)`
    /// removals and insertions, **without** touching the entries that
    /// merely moved — their cached coordinates go stale instead.
    ///
    /// This is the per-step fast path of temporally-coherent
    /// maintenance: as long as every indexed agent has moved at most
    /// `slop` from where it was last filed
    /// ([`GridIndexBuffer::rebuild_incremental`],
    /// [`GridIndexBuffer::update_moved`], or its own insertion —
    /// whichever touched it last), radius-`r` transmit joins stay exact
    /// via [`GridIndexBuffer::join_covered_by_stale`] with that `slop`,
    /// and no per-step `O(len)` pass runs at all. Call
    /// [`GridIndexBuffer::update_moved`] to re-file everything and
    /// reset the staleness budget.
    ///
    /// Inserted ids are filed by their **current** position (their own
    /// staleness starts at zero). A slack overflow re-layouts in place
    /// exactly as in [`GridIndexBuffer::update_moved`] — re-layouts
    /// re-bin by *cached* coordinates, so staleness is unaffected.
    ///
    /// # Examples
    ///
    /// ```
    /// use fastflood_geom::{Point, Rect};
    /// use fastflood_spatial::GridIndexBuffer;
    ///
    /// let region = Rect::square(100.0)?;
    /// let mut pts = vec![
    ///     Point::new(10.0, 10.0),
    ///     Point::new(12.0, 10.0),
    ///     Point::new(90.0, 90.0),
    /// ];
    /// let mut buf = GridIndexBuffer::new();
    /// buf.rebuild_incremental(region, 8.0, &pts, &[0, 1], pts.len(), &[])?;
    ///
    /// // agents drift a little (far less than a bucket) while the
    /// // membership churns; the index is NOT re-binned
    /// pts[0] = Point::new(10.5, 10.2);
    /// pts[1] = Point::new(12.4, 9.8);
    /// buf.update_membership(&pts, &[0], &[2])?;
    ///
    /// // stale-tolerant join against a fresh transmitter grid still
    /// // answers exactly, given the drift bound
    /// let mut tx = GridIndexBuffer::new();
    /// tx.rebuild_subset_shared(region, 8.0, &pts, &[0], pts.len())?;
    /// let mut covered = Vec::new();
    /// buf.join_covered_by_stale(&tx, 2.0, 0.6, &pts, |id| covered.push(id));
    /// assert_eq!(covered, vec![1]); // only 1 is near 0; 2 is far away
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SpatialError::NotFinite`] when an inserted position is
    /// NaN/infinite; the buffer degrades to an empty index.
    ///
    /// # Panics
    ///
    /// Panics when the buffer does not hold a slack layout, or — in
    /// debug builds — when `removed` names an id that is not indexed.
    pub fn update_membership(
        &mut self,
        positions: &[Point],
        removed: &[u32],
        inserted: &[u32],
    ) -> Result<(), SpatialError> {
        assert!(
            self.incremental,
            "update_membership requires a slack layout (build with rebuild_incremental)"
        );
        if self.slot_of.len() < positions.len() {
            self.slot_of.resize(positions.len(), u32::MAX);
        }
        for &id in removed {
            self.remove_one(id);
        }
        for &id in inserted {
            let p = positions[id as usize];
            if !p.is_finite() {
                self.degrade_to_empty();
                return Err(SpatialError::NotFinite { index: id as usize });
            }
            self.insert_raw(self.bucket_index(p.x, p.y), id, p.x, p.y, true);
            self.len += 1;
        }
        // `occupied` was maintained in place by the surgery above; only
        // the overflow fallback re-derives it (inside the re-layout)
        if !self.pending.is_empty() {
            self.relayout();
        }
        Ok(())
    }

    /// Diff-based re-synchronization of a slack layout with moved
    /// positions and changed membership, in one call:
    ///
    /// 1. **removals** — each id in `removed` leaves the index in `O(1)`
    ///    (slot-map lookup, swap-remove within its bucket row);
    /// 2. **moves** — one pass over the live entries refreshes every
    ///    cached coordinate from `positions` and relocates the entries
    ///    whose bucket changed (swap-remove from the old row, append
    ///    into the new row's slack);
    /// 3. **insertions** — each id in `inserted` is filed into its
    ///    bucket's slack.
    ///
    /// A row out of slack parks the entry instead of failing; if any
    /// entry was parked, the whole layout is rebuilt in place with
    /// fresh slack before returning (reported via
    /// [`UpdateStats::relayout`], counted by
    /// [`GridIndexBuffer::relayouts`]). Either way the buffer ends the
    /// call **coherent**: every entry sits in the row its cached
    /// position bins to, the occupied-bucket list is exact and sorted,
    /// and queries / [`GridIndexBuffer::join_covered_by`] behave as
    /// after a full rebuild over the same membership — which is what
    /// makes this a drop-in replacement for per-step re-binning when
    /// agents move far less than a bucket per step. Allocation-free
    /// once the buffer is warm ([`GridIndexBuffer::reserve`]).
    ///
    /// `removed` must name currently indexed ids (each exactly once);
    /// `inserted` ids must not be indexed and must index `positions`.
    /// Grid geometry (region, bucket layout) is untouched, so shared
    /// geometry for joins survives updates.
    ///
    /// # Examples
    ///
    /// ```
    /// use fastflood_geom::{Point, Rect};
    /// use fastflood_spatial::GridIndexBuffer;
    ///
    /// let region = Rect::square(100.0)?;
    /// let mut pts = vec![
    ///     Point::new(10.0, 10.0),
    ///     Point::new(12.0, 10.0),
    ///     Point::new(90.0, 90.0),
    /// ];
    /// let mut buf = GridIndexBuffer::new();
    /// buf.rebuild_incremental(region, 5.0, &pts, &[0, 1], pts.len(), &[])?;
    ///
    /// // agent 1 drifts across a bucket boundary, 0 leaves, 2 joins
    /// pts[1] = Point::new(55.0, 10.0);
    /// let stats = buf.update_moved(&pts, &[0], &[2])?;
    /// assert_eq!(buf.len(), 2);
    /// assert!(!buf.any_within(Point::new(10.0, 10.0), 1.0)); // 0 gone
    /// assert!(buf.any_within(Point::new(55.0, 10.0), 0.1)); // 1 moved
    /// assert!(buf.any_within(Point::new(90.0, 90.0), 0.1)); // 2 joined
    /// assert_eq!(stats.relocated, 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SpatialError::NotFinite`] when a live or inserted agent's
    /// position has a NaN/infinite coordinate; the buffer degrades to
    /// an empty index (as a failed rebuild does) and must be rebuilt.
    ///
    /// # Panics
    ///
    /// Panics when the buffer does not hold a slack layout (build with
    /// [`GridIndexBuffer::rebuild_incremental`] first), or — in debug
    /// builds — when `removed` names an id that is not indexed.
    pub fn update_moved(
        &mut self,
        positions: &[Point],
        removed: &[u32],
        inserted: &[u32],
    ) -> Result<UpdateStats, SpatialError> {
        self.update_moved_inner(positions, removed, inserted, None)
    }

    /// Parallel form of [`GridIndexBuffer::update_moved`]: the
    /// coordinate-refresh/relocation pass (step 2, the `O(live)` part)
    /// runs **sharded by bucket row** on `pool` — each shard owns a
    /// contiguous range of CSR rows and therefore disjoint slices of the
    /// entry arrays — while removals, insertions, and the relocation of
    /// bucket-crossers stay sequential (they are `O(churn)` and
    /// `O(crossers)`).
    ///
    /// A shard refreshes cached coordinates and swap-removes crossers
    /// within its own rows only; the crossers and the slot-map fixups
    /// (scattered by id, so not safely writable from shards) are parked
    /// in per-shard regions of retained scratch and applied in canonical
    /// shard order afterwards. The resulting index is **coherent and
    /// holds exactly the entry set** a sequential `update_moved` would
    /// produce; only the order of entries *within* a row may differ
    /// (bucket-crossers are appended after the sharded pass instead of
    /// interleaved during it), which queries and joins never observe as
    /// anything but report order. Allocation-free once warm
    /// ([`GridIndexBuffer::reserve_parallel`]).
    ///
    /// # Errors and panics
    ///
    /// As [`GridIndexBuffer::update_moved`].
    pub fn update_moved_par(
        &mut self,
        positions: &[Point],
        removed: &[u32],
        inserted: &[u32],
        pool: &WorkerPool,
    ) -> Result<UpdateStats, SpatialError> {
        self.update_moved_inner(positions, removed, inserted, Some(pool))
    }

    fn update_moved_inner(
        &mut self,
        positions: &[Point],
        removed: &[u32],
        inserted: &[u32],
        pool: Option<&WorkerPool>,
    ) -> Result<UpdateStats, SpatialError> {
        assert!(
            self.incremental,
            "update_moved requires a slack layout (build with rebuild_incremental)"
        );
        let m = self.m;
        let min = self.region.min();
        let inv_x = 1.0 / self.bucket_len_x;
        let inv_y = 1.0 / self.bucket_len_y;
        let bucket_of = |x: f64, y: f64| -> usize { bin(x, y, min, inv_x, inv_y, m) };
        if self.slot_of.len() < positions.len() {
            self.slot_of.resize(positions.len(), u32::MAX);
        }
        // 1. membership removals: O(1) each via the slot map. The
        // entry's CACHED coordinates name the row it is filed under
        // (the coherence invariant), whatever `positions` now says.
        for &id in removed {
            self.remove_one(id);
        }
        // 2. the move pass: refresh every cached coordinate and
        // relocate bucket-crossers.
        let tasks = pool.map_or(1, |p| {
            if p.threads() <= 1 {
                // a 1-thread pool refreshes fastest on the sequential
                // interleaved pass (no fixup/crosser parking)
                1
            } else {
                p.threads().saturating_mul(2).min(MAX_PAR_SHARDS).min(m * m)
            }
        });
        let relocated = if tasks > 1 {
            match self.refresh_rows_sharded(positions, pool.expect("tasks > 1"), tasks) {
                Ok(relocated) => relocated,
                Err(index) => {
                    self.degrade_to_empty();
                    return Err(SpatialError::NotFinite { index });
                }
            }
        } else {
            // sequential: relocations interleave with the scan. An entry
            // relocated into a not-yet-visited row is re-examined there,
            // which is a no-op (its bucket now matches); the swapped-in
            // entry lands in slot `e` and is examined next iteration, so
            // nothing is skipped.
            let mut relocated = 0usize;
            let mut bad: Option<usize> = None;
            'rows: for b in 0..m * m {
                let mut e = self.starts[b] as usize;
                while e < self.ends[b] as usize {
                    let id = self.ids[e];
                    let p = positions[id as usize];
                    if !p.is_finite() {
                        bad = Some(id as usize);
                        break 'rows;
                    }
                    let nb = bucket_of(p.x, p.y);
                    self.pts[e] = (p.x, p.y);
                    if nb == b {
                        e += 1;
                        continue;
                    }
                    relocated += 1;
                    let last = self.ends[b] as usize - 1;
                    self.ids[e] = self.ids[last];
                    self.pts[e] = self.pts[last];
                    self.slot_of[self.ids[e] as usize] = e as u32;
                    self.ends[b] = last as u32;
                    self.insert_raw(nb, id, p.x, p.y, false);
                }
            }
            if let Some(index) = bad {
                self.degrade_to_empty();
                return Err(SpatialError::NotFinite { index });
            }
            relocated
        };
        // 3. membership insertions, binned by their current position
        for &id in inserted {
            let p = positions[id as usize];
            if !p.is_finite() {
                self.degrade_to_empty();
                return Err(SpatialError::NotFinite { index: id as usize });
            }
            self.insert_raw(bucket_of(p.x, p.y), id, p.x, p.y, true);
            self.len += 1;
        }
        // overflow fallback, then occupied-list re-derivation (the
        // re-layout rebuilds occupied itself)
        let relayout = !self.pending.is_empty();
        if relayout {
            self.relayout();
        } else {
            self.rescan_occupied();
        }
        Ok(UpdateStats {
            relocated,
            relayout,
        })
    }

    /// The sharded coordinate-refresh pass of
    /// [`GridIndexBuffer::update_moved_par`]: splits the CSR rows into
    /// `tasks` contiguous shards balanced by slot count (rows are
    /// contiguous in the entry arrays, so each shard owns disjoint
    /// slices of `ids`/`pts`/`ends`), refreshes in parallel, then
    /// applies the deferred slot-map fixups and re-files the
    /// bucket-crossers sequentially in canonical shard order.
    ///
    /// Returns the relocation count, or the first non-finite agent id
    /// (by shard order) — the caller degrades and reports it exactly as
    /// the sequential path does.
    fn refresh_rows_sharded(
        &mut self,
        positions: &[Point],
        pool: &WorkerPool,
        tasks: usize,
    ) -> Result<usize, usize> {
        let m = self.m;
        let rows = m * m;
        let min = self.region.min();
        let inv_x = 1.0 / self.bucket_len_x;
        let inv_y = 1.0 / self.bucket_len_y;
        let slots = self.starts[rows] as usize;
        // row-aligned shard boundaries, balanced by slot span
        let per_shard = slots.div_ceil(tasks).max(1);
        let mut row_bound = [0usize; MAX_PAR_SHARDS + 1];
        {
            let mut shard = 0usize;
            for b in 0..rows {
                if (self.starts[b] as usize) >= (shard + 1) * per_shard && shard + 1 < tasks {
                    shard += 1;
                    row_bound[shard] = b;
                }
            }
            for bound in row_bound.iter_mut().take(tasks + 1).skip(shard + 1) {
                *bound = rows;
            }
        }
        // the entry arrays and scratch leave `self` for the duration of
        // the sharded pass (the kernel reads `self.starts` shared)
        let mut ids = std::mem::take(&mut self.ids);
        let mut pts = std::mem::take(&mut self.pts);
        let mut ends = std::mem::take(&mut self.ends);
        let mut par_moves = std::mem::take(&mut self.par_moves);
        let mut par_fixups = std::mem::take(&mut self.par_fixups);
        if par_moves.len() < slots {
            par_moves.resize(slots, (0, 0.0, 0.0, 0));
        }
        if par_fixups.len() < slots {
            par_fixups.resize(slots, (0, 0));
        }
        struct RefreshShard<'a> {
            b_lo: usize,
            b_hi: usize,
            /// Global slot index of `ids[0]`/`pts[0]`.
            slot_off: usize,
            ids: &'a mut [u32],
            pts: &'a mut [(f64, f64)],
            ends: &'a mut [u32],
            moves: &'a mut [(u32, f64, f64, u32)],
            fixups: &'a mut [(u32, u32)],
            n_moves: usize,
            n_fixups: usize,
            bad: Option<u32>,
        }
        let mut shards: [Option<RefreshShard>; MAX_PAR_SHARDS] = std::array::from_fn(|_| None);
        {
            let starts = &self.starts;
            let (mut ids_rest, mut pts_rest) = (&mut ids[..slots], &mut pts[..slots]);
            let mut ends_rest = &mut ends[..rows];
            let (mut mv_rest, mut fx_rest) = (&mut par_moves[..slots], &mut par_fixups[..slots]);
            for (s, slot) in shards.iter_mut().enumerate().take(tasks) {
                let (b_lo, b_hi) = (row_bound[s], row_bound[s + 1]);
                let slot_lo = starts[b_lo] as usize;
                let span = starts[b_hi] as usize - slot_lo;
                let (ids_part, ids_tail) = ids_rest.split_at_mut(span);
                let (pts_part, pts_tail) = pts_rest.split_at_mut(span);
                let (ends_part, ends_tail) = ends_rest.split_at_mut(b_hi - b_lo);
                let (mv_part, mv_tail) = mv_rest.split_at_mut(span);
                let (fx_part, fx_tail) = fx_rest.split_at_mut(span);
                ids_rest = ids_tail;
                pts_rest = pts_tail;
                ends_rest = ends_tail;
                mv_rest = mv_tail;
                fx_rest = fx_tail;
                *slot = Some(RefreshShard {
                    b_lo,
                    b_hi,
                    slot_off: slot_lo,
                    ids: ids_part,
                    pts: pts_part,
                    ends: ends_part,
                    moves: mv_part,
                    fixups: fx_part,
                    n_moves: 0,
                    n_fixups: 0,
                    bad: None,
                });
            }
        }
        {
            let starts = &self.starts;
            run_ctx(pool, &mut shards[..tasks], |_s, shard| {
                let sh = shard.as_mut().expect("shard built above");
                // `b` walks rows while the body mutates several local
                // arrays at row-derived offsets; an iterator form over
                // `starts` would obscure that
                #[allow(clippy::needless_range_loop)]
                'rows: for b in sh.b_lo..sh.b_hi {
                    let lb = b - sh.b_lo;
                    let mut e = starts[b] as usize;
                    let mut end = sh.ends[lb] as usize;
                    while e < end {
                        let le = e - sh.slot_off;
                        let id = sh.ids[le];
                        let p = positions[id as usize];
                        if !p.is_finite() {
                            sh.bad = Some(id);
                            break 'rows;
                        }
                        let nb = bin(p.x, p.y, min, inv_x, inv_y, m);
                        sh.pts[le] = (p.x, p.y);
                        if nb == b {
                            e += 1;
                            continue;
                        }
                        // bucket-crosser: swap-remove within the row;
                        // the re-file and the slot-map write are parked
                        // for the sequential merge
                        sh.moves[sh.n_moves] = (id, p.x, p.y, nb as u32);
                        sh.n_moves += 1;
                        let last = end - 1;
                        let ll = last - sh.slot_off;
                        sh.ids[le] = sh.ids[ll];
                        sh.pts[le] = sh.pts[ll];
                        sh.fixups[sh.n_fixups] = (sh.ids[le], e as u32);
                        sh.n_fixups += 1;
                        end = last;
                    }
                    sh.ends[lb] = end as u32;
                }
            });
        }
        // canonical-order merge: fixups first (an id's final slot is the
        // last fixup recorded for it, exactly as the sequential
        // interleaving would have left it), then the crossers re-file
        let mut bad: Option<u32> = None;
        let mut relocated = 0usize;
        for shard in shards.iter().take(tasks) {
            let sh = shard.as_ref().expect("shard built above");
            if bad.is_none() {
                bad = sh.bad;
            }
        }
        if bad.is_none() {
            for shard in shards.iter().take(tasks) {
                let sh = shard.as_ref().expect("shard built above");
                for &(id, slot) in &sh.fixups[..sh.n_fixups] {
                    self.slot_of[id as usize] = slot;
                }
                relocated += sh.n_moves;
            }
        }
        let move_bounds: [(usize, usize); MAX_PAR_SHARDS] = std::array::from_fn(|s| {
            if s < tasks {
                let sh = shards[s].as_ref().expect("shard built above");
                (sh.slot_off, sh.n_moves)
            } else {
                (0, 0)
            }
        });
        self.ids = ids;
        self.pts = pts;
        self.ends = ends;
        self.par_moves = par_moves;
        self.par_fixups = par_fixups;
        if let Some(id) = bad {
            return Err(id as usize);
        }
        for &(slot_off, n_moves) in move_bounds.iter().take(tasks) {
            for k in 0..n_moves {
                let (id, x, y, nb) = self.par_moves[slot_off + k];
                self.insert_raw(nb as usize, id, x, y, false);
            }
        }
        Ok(relocated)
    }

    /// Files `id` (cached position `(x, y)`) into row `nb`'s slack; a
    /// full row parks the entry on the pending list for the
    /// end-of-update re-layout instead.
    ///
    /// `arrival` marks a *membership* insertion from
    /// [`GridIndexBuffer::update_membership`] /
    /// [`GridIndexBuffer::update_moved`]'s `inserted` list: it consumes
    /// one slot of the row's expected-arrival headroom (so a later
    /// re-layout re-reserves only what is still pending), and — on the
    /// membership-only path, which never rescans — keeps the occupied
    /// list exact across empty→non-empty transitions. Relocations of
    /// already-indexed entries pass `false`: they ride the proportional
    /// slack (eating reservations for them would erode the headroom the
    /// announced arrivals depend on), and their caller re-derives the
    /// occupied list afterwards anyway, so the hot relocation loop
    /// stays free of list bookkeeping.
    fn insert_raw(&mut self, nb: usize, id: u32, x: f64, y: f64, arrival: bool) {
        let end = self.ends[nb] as usize;
        if end < self.starts[nb + 1] as usize {
            self.ids[end] = id;
            self.pts[end] = (x, y);
            self.slot_of[id as usize] = end as u32;
            self.ends[nb] = end as u32 + 1;
            if arrival {
                if self.extra[nb] > 0 {
                    self.extra[nb] -= 1;
                }
                if end == self.starts[nb] as usize {
                    // empty → non-empty transition keeps `occupied`
                    // exact without any table scan (rare: O(occupied)
                    // memmove; no allocation, the list is reserved for
                    // worst case)
                    if let Err(i) = self.occupied.binary_search(&(nb as u32)) {
                        self.occupied.insert(i, nb as u32);
                    }
                }
            }
        } else {
            self.pending.push((id, x, y));
        }
    }

    /// Turns per-bucket counts (left in `starts[b + 1]` by a counting
    /// pass) into the slack-layout prefix shared by full rebuilds and
    /// re-layouts: `starts` become slot offsets (count + `slack_cap`
    /// slack + remaining expected-arrival headroom per row), `ends` the
    /// live row ends, `occupied` the non-empty rows ascending; entry
    /// storage grows to the slot total and the scatter cursor is reset
    /// to the row starts.
    fn slack_prefix_from_counts(&mut self) {
        let m = self.m;
        self.occupied.clear();
        self.ends.clear();
        for b in 0..m * m {
            let c = self.starts[b + 1];
            if c > 0 {
                self.occupied.push(b as u32);
            }
            let start = self.starts[b];
            self.ends.push(start + c);
            self.starts[b + 1] = start + slack_cap(c) + self.extra[b];
        }
        let slots = self.starts[m * m] as usize;
        if self.ids.len() < slots {
            self.ids.resize(slots, 0);
        }
        if self.pts.len() < slots {
            self.pts.resize(slots, (0.0, 0.0));
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts[..m * m]);
    }

    /// Rebuilds the slack layout in place from the currently indexed
    /// entries (live rows plus pending overflow), granting every row
    /// fresh slack. `O(len + rows)`, entirely out of retained storage.
    fn relayout(&mut self) {
        self.relayouts += 1;
        let m = self.m;
        // snapshot live entries into the binning scratch of full
        // rebuilds (`bkt` doubles as the id scratch here)
        self.bkt.clear();
        self.gather.clear();
        for b in 0..m * m {
            for e in self.starts[b] as usize..self.ends[b] as usize {
                self.bkt.push(self.ids[e]);
                self.gather.push(self.pts[e]);
            }
        }
        while let Some((id, x, y)) = self.pending.pop() {
            self.bkt.push(id);
            self.gather.push((x, y));
        }
        debug_assert_eq!(self.bkt.len(), self.len, "entry snapshot is complete");
        let min = self.region.min();
        let inv_x = 1.0 / self.bucket_len_x;
        let inv_y = 1.0 / self.bucket_len_y;
        let bucket_of = |x: f64, y: f64| -> usize { bin(x, y, min, inv_x, inv_y, m) };
        self.starts.clear();
        self.starts.resize(m * m + 1, 0);
        for &(x, y) in &self.gather {
            self.starts[bucket_of(x, y) + 1] += 1;
        }
        // still-pending expected arrivals keep their reservations
        // (`extra` is consumed by inserts, not reset here)
        self.slack_prefix_from_counts();
        for (&id, &(x, y)) in self.bkt.iter().zip(&self.gather) {
            let b = bucket_of(x, y);
            let at = self.cursor[b] as usize;
            self.cursor[b] += 1;
            self.ids[at] = id;
            self.pts[at] = (x, y);
            self.slot_of[id as usize] = at as u32;
        }
    }

    /// Whether the buffer holds a slack (incremental) layout — i.e.
    /// [`GridIndexBuffer::update_moved`] may be called on it.
    #[inline]
    pub fn is_incremental(&self) -> bool {
        self.incremental
    }

    /// Cumulative slack-overflow re-layouts taken by
    /// [`GridIndexBuffer::update_moved`] since construction — the
    /// fallback's amortized-cost diagnostic.
    #[inline]
    pub fn relayouts(&self) -> u64 {
        self.relayouts
    }

    /// Calls `f(bucket, id, position)` for every live entry, buckets
    /// ascending (order within a bucket unspecified).
    ///
    /// Works on tight and slack layouts alike — the canonical way to
    /// snapshot the *entry set*, e.g. to assert that an incrementally
    /// maintained buffer holds exactly what a fresh rebuild would.
    pub fn for_each_entry<F: FnMut(usize, usize, Point)>(&self, mut f: F) {
        for &b in &self.occupied {
            let b = b as usize;
            for e in self.starts[b] as usize..self.ends[b] as usize {
                let (x, y) = self.pts[e];
                f(b, self.ids[e] as usize, Point::new(x, y));
            }
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer currently indexes no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Buckets per axis of the current rebuild.
    #[inline]
    pub fn buckets_per_axis(&self) -> usize {
        self.m
    }

    /// Bucket indices (row-major, `cy·m + cx`) that hold at least one
    /// point, ascending. Rebuilt for free inside every rebuild's
    /// prefix-sum pass; the outer worklist of the bucket join.
    #[inline]
    pub fn occupied_buckets(&self) -> &[u32] {
        &self.occupied
    }

    /// The indexed original ids in **bucket order** — a spatial sort of
    /// the indexed subset for free.
    ///
    /// Points binned into the same bucket are adjacent in this slice and
    /// buckets appear row-major, so iterating a worklist in this order
    /// makes consecutive spatial queries touch the same or neighboring
    /// buckets (probe-order locality). The flooding engine's bucket-join
    /// mode consumes its worklist in exactly this order.
    ///
    /// # Examples
    ///
    /// ```
    /// use fastflood_geom::{Point, Rect};
    /// use fastflood_spatial::GridIndexBuffer;
    ///
    /// let region = Rect::square(100.0)?;
    /// // two far-apart clusters, interleaved in id order
    /// let pts = vec![
    ///     Point::new(1.0, 1.0),
    ///     Point::new(90.0, 90.0),
    ///     Point::new(2.0, 2.0),
    ///     Point::new(91.0, 91.0),
    /// ];
    /// let mut buf = GridIndexBuffer::new();
    /// buf.rebuild(region, 10.0, &pts)?;
    /// // bucket order groups each cluster together
    /// assert_eq!(buf.ids(), &[0, 2, 1, 3]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on a slack (incremental) layout, whose live entries are
    /// not one contiguous slice; snapshot those via
    /// [`GridIndexBuffer::for_each_entry`] instead.
    #[inline]
    pub fn ids(&self) -> &[u32] {
        assert!(
            !self.incremental,
            "ids() requires a tight layout; slack layouts are not contiguous \
             (use for_each_entry)"
        );
        &self.ids[..self.len]
    }

    /// Resolves the ≤ 3×3 facing CSR slices of `other` around bucket
    /// `(cx, cy)` into `slices` — skipping empty buckets, each slice
    /// carrying its (possibly unbounded: border buckets absorb clamped
    /// out-of-region points) cell rectangle for pruning — and returns
    /// the count. Shared by the exact and stale-tolerant joins so the
    /// border-extent logic can never diverge between the two kernels.
    #[inline]
    fn facing_slices(
        &self,
        other: &GridIndexBuffer,
        cx: usize,
        cy: usize,
        slices: &mut [Slice; 9],
    ) -> usize {
        let m = self.m;
        let min = self.region.min();
        let mut count = 0usize;
        for ny in cy.saturating_sub(1)..=(cy + 1).min(m - 1) {
            let cell_y0 = if ny == 0 {
                f64::NEG_INFINITY
            } else {
                min.y + ny as f64 * self.bucket_len_y
            };
            let cell_y1 = if ny == m - 1 {
                f64::INFINITY
            } else {
                min.y + (ny + 1) as f64 * self.bucket_len_y
            };
            for nx in cx.saturating_sub(1)..=(cx + 1).min(m - 1) {
                let nb = ny * m + nx;
                let tlo = other.starts[nb];
                let thi = other.ends[nb];
                if tlo == thi {
                    continue;
                }
                let cell_x0 = if nx == 0 {
                    f64::NEG_INFINITY
                } else {
                    min.x + nx as f64 * self.bucket_len_x
                };
                let cell_x1 = if nx == m - 1 {
                    f64::INFINITY
                } else {
                    min.x + (nx + 1) as f64 * self.bucket_len_x
                };
                slices[count] = Slice {
                    lo: tlo,
                    hi: thi,
                    x0: cell_x0,
                    x1: cell_x1,
                    y0: cell_y0,
                    y1: cell_y1,
                };
                count += 1;
            }
        }
        count
    }

    /// Drops the slices in `slices[..count]` whose cell rectangle is
    /// farther than `pad2` (squared distance) from the tight AABB of
    /// this bucket's cached points `lo..hi`; returns the kept count.
    /// The bucket-pair prune of both join kernels (the stale-tolerant
    /// one inflates `pad2` for drift on both sides).
    #[inline]
    fn prune_slices_by_aabb(
        &self,
        lo: usize,
        hi: usize,
        slices: &mut [Slice; 9],
        count: usize,
        pad2: f64,
    ) -> usize {
        let (mut ax0, mut ay0) = self.pts[lo];
        let (mut ax1, mut ay1) = (ax0, ay0);
        for &(x, y) in &self.pts[lo + 1..hi] {
            ax0 = ax0.min(x);
            ax1 = ax1.max(x);
            ay0 = ay0.min(y);
            ay1 = ay1.max(y);
        }
        let mut kept = 0usize;
        for i in 0..count {
            let s = slices[i];
            let gap_x = (s.x0 - ax1).max(ax0 - s.x1).max(0.0);
            let gap_y = (s.y0 - ay1).max(ay0 - s.y1).max(0.0);
            if gap_x * gap_x + gap_y * gap_y <= pad2 {
                slices[kept] = s;
                kept += 1;
            }
        }
        kept
    }

    /// Whether `other` was rebuilt with the same grid geometry (region,
    /// bucket layout) as `self` — the precondition of
    /// [`GridIndexBuffer::join_covered_by`], guaranteed by rebuilding
    /// both sides via [`GridIndexBuffer::rebuild_subset_shared`] with
    /// identical `region` / `bucket_size` / `geometry_points`.
    #[inline]
    pub fn shares_geometry_with(&self, other: &GridIndexBuffer) -> bool {
        self.m == other.m
            && self.region == other.region
            && self.bucket_len_x == other.bucket_len_x
            && self.bucket_len_y == other.bucket_len_y
    }

    /// Bucket join: calls `f(id)` once for every point indexed in `self`
    /// that lies within Euclidean distance `r` (inclusive) of **some**
    /// point indexed in `other`.
    ///
    /// Instead of issuing a scattered disk query per point, the join
    /// iterates the occupied buckets of `self`; for each it resolves the
    /// ≤ 3×3 facing CSR slices of `other` **once** (skipping empty
    /// buckets, and pruning slices whose bucket rectangle is farther
    /// than `r` from the tight AABB of this bucket's points), then runs
    /// dense slice-×-slice distance loops with first-hit early exit per
    /// point. Both sides stream in bucket order, so the inner loops read
    /// sequential memory and the per-bucket slice set stays cache-hot —
    /// the win over per-agent probing in dense large-`n` populations.
    ///
    /// Each id is reported at most once (a point lives in exactly one
    /// bucket). Allocation-free: the slice set lives in a fixed array.
    ///
    /// # Panics
    ///
    /// Panics when the two buffers were not rebuilt with a shared
    /// geometry (see [`GridIndexBuffer::rebuild_subset_shared`]), or
    /// when `r` exceeds the bucket side (the 3×3 neighborhood would miss
    /// pairs; rebuild with `bucket_size >= r`).
    ///
    /// # Examples
    ///
    /// ```
    /// use fastflood_geom::{Point, Rect};
    /// use fastflood_spatial::GridIndexBuffer;
    ///
    /// let region = Rect::square(100.0)?;
    /// let pts = vec![
    ///     Point::new(10.0, 10.0), // uninformed, near the transmitter
    ///     Point::new(60.0, 60.0), // uninformed, far away
    ///     Point::new(12.0, 10.0), // transmitter
    /// ];
    /// let (mut uninformed, mut tx) = (GridIndexBuffer::new(), GridIndexBuffer::new());
    /// uninformed.rebuild_subset_shared(region, 5.0, &pts, &[0, 1], pts.len())?;
    /// tx.rebuild_subset_shared(region, 5.0, &pts, &[2], pts.len())?;
    ///
    /// let mut covered = Vec::new();
    /// uninformed.join_covered_by(&tx, 5.0, |id| covered.push(id));
    /// assert_eq!(covered, vec![0]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn join_covered_by<F: FnMut(usize)>(&self, other: &GridIndexBuffer, r: f64, mut f: F) {
        assert!(
            self.shares_geometry_with(other),
            "join requires both buffers rebuilt with a shared geometry"
        );
        debug_assert!(r >= 0.0, "join radius must be nonnegative");
        assert!(
            self.m == 1 || r <= self.bucket_len_x.min(self.bucket_len_y) * (1.0 + 1e-12),
            "join radius {r} exceeds bucket side {}",
            self.bucket_len_x.min(self.bucket_len_y)
        );
        if self.len == 0 || other.len == 0 {
            return;
        }
        let m = self.m;
        let r2 = r * r;
        for &b in &self.occupied {
            let b = b as usize;
            let lo = self.starts[b] as usize;
            let hi = self.ends[b] as usize;
            let (cx, cy) = (b % m, b / m);
            // facing slices of `other`, resolved once per bucket (≤ 3×3
            // because the bucket side is at least r)
            let mut slices = [Slice::EMPTY; 9];
            let count = self.facing_slices(other, cx, cy, &mut slices);
            if count == 0 {
                // the common far-from-frontier case: no facing points at
                // all, skip before doing any per-point work
                continue;
            }
            // bucket-pair AABB prune: drop slices whose cell rectangle
            // is farther than r from the tight AABB of this bucket's
            // points (computed lazily — only frontier-adjacent buckets
            // get this far)
            let count = self.prune_slices_by_aabb(lo, hi, &mut slices, count, r2);
            if count == 0 {
                continue;
            }
            // CSR-slice × CSR-slice inner loops, early exit per point.
            // With coarse buckets a slice holds many candidates, so each
            // point first checks its distance to the slice's cell
            // rectangle — frontier-band points skip most slices outright
            // instead of scanning them to exhaustion.
            for e in lo..hi {
                let (px, py) = self.pts[e];
                'probe: for s in &slices[..count] {
                    let ddx = px.clamp(s.x0, s.x1) - px;
                    let ddy = py.clamp(s.y0, s.y1) - py;
                    if ddx * ddx + ddy * ddy > r2 {
                        continue;
                    }
                    for t in s.lo as usize..s.hi as usize {
                        let (qx, qy) = other.pts[t];
                        let dx = qx - px;
                        let dy = qy - py;
                        if dx * dx + dy * dy <= r2 {
                            f(self.ids[e] as usize);
                            break 'probe;
                        }
                    }
                }
            }
        }
    }

    /// Stamps the 3×3 neighborhoods of `other`'s occupied buckets into
    /// the retained band-filter scratch under a fresh epoch — the
    /// frontier band of [`GridIndexBuffer::join_covered_by_stale`].
    /// `O(9 · other.occupied)`; allocation-free once the stamp table has
    /// grown to the geometry (covered by [`GridIndexBuffer::reserve`]).
    fn stamp_band(&mut self, other: &GridIndexBuffer) {
        let m = self.m;
        if self.band_stamp.len() < m * m {
            // grow-only; surviving entries hold older epochs and stay
            // inert under the new one
            self.band_stamp.resize(m * m, u32::MAX);
        }
        if self.band_epoch == u32::MAX {
            // epoch wrap (once per 2^32 joins): restart the epoch space
            for s in &mut self.band_stamp {
                *s = u32::MAX;
            }
            self.band_epoch = 0;
        }
        self.band_epoch += 1;
        let epoch = self.band_epoch;
        for &tb in &other.occupied {
            let (cx, cy) = (tb as usize % m, tb as usize / m);
            for ny in cy.saturating_sub(1)..=(cy + 1).min(m - 1) {
                let row = ny * m;
                for nx in cx.saturating_sub(1)..=(cx + 1).min(m - 1) {
                    self.band_stamp[row + nx] = epoch;
                }
            }
        }
    }

    /// Stale-tolerant bucket join: like
    /// [`GridIndexBuffer::join_covered_by`], but correct even when the
    /// indexed entries' cached coordinates lag their true positions by
    /// up to `slop` — the companion of
    /// [`GridIndexBuffer::update_membership`]'s deferred-move regime.
    ///
    /// Binning and occupied lists are taken from the (stale) cached
    /// state; every *distance decision* reads the exact coordinates
    /// from `positions`. The bucket-level prunes are inflated to stay
    /// conservative under drift: a facing slice survives when its cell
    /// rectangle is within `r + 2·slop` of the bucket's cached-point
    /// AABB (both sides may have drifted `slop`), a point skips a slice
    /// only when it is farther than `r + slop` from the slice's cell
    /// rectangle (the slice's contents may have drifted out by `slop`),
    /// and the inner loops compare true positions against `r` exactly —
    /// so the reported set is *identical* to a fresh re-bin's join.
    ///
    /// With `slop = 0` this is semantically `join_covered_by`; prefer
    /// that one on freshly re-binned buffers (it streams the packed
    /// coordinates instead of reading `positions` through the ids).
    ///
    /// **Frontier-band iteration.** When the facing side occupies fewer
    /// buckets than this one (the usual mid-flood shape: a compact
    /// transmitter disk against the spread-out uninformed complement),
    /// the join first stamps the 3×3 neighborhood of the facing side's
    /// occupied buckets and then walks only the own occupied buckets
    /// inside that band — every bucket outside it is provably hit-free
    /// (its 3×3 holds no facing point), so it is skipped with one stamp
    /// read instead of nine facing-slice probes. The reported set and
    /// its order are identical either way; the stamp scratch is retained
    /// (takes `&mut self`), keeping the join allocation-free once warm.
    ///
    /// # Panics
    ///
    /// Panics when the buffers do not share a geometry, or when
    /// `r + 2·slop` exceeds the bucket side (the 3×3 neighborhood could
    /// miss drifted pairs; re-file entries with
    /// [`GridIndexBuffer::update_moved`] before the staleness budget
    /// runs out). Indexed ids must be in bounds of `positions`.
    pub fn join_covered_by_stale<F: FnMut(usize)>(
        &mut self,
        other: &GridIndexBuffer,
        r: f64,
        slop: f64,
        positions: &[Point],
        mut f: F,
    ) {
        assert!(
            self.shares_geometry_with(other),
            "join requires both buffers rebuilt with a shared geometry"
        );
        debug_assert!(r >= 0.0, "join radius must be nonnegative");
        debug_assert!(slop >= 0.0, "staleness bound must be nonnegative");
        assert!(
            self.m == 1
                || r + 2.0 * slop <= self.bucket_len_x.min(self.bucket_len_y) * (1.0 + 1e-12),
            "join radius {r} + twice staleness {slop} exceeds bucket side {}",
            self.bucket_len_x.min(self.bucket_len_y)
        );
        if self.len == 0 || other.len == 0 {
            return;
        }
        let use_band = other.occupied.len() < self.occupied.len();
        if use_band {
            self.stamp_band(other);
        }
        self.stale_join_occ_range(
            other,
            0..self.occupied.len(),
            use_band,
            r,
            slop,
            positions,
            &mut f,
        );
    }

    /// The per-bucket kernel of the stale-tolerant join over a range of
    /// this side's occupied-bucket list — the one body shared by the
    /// sequential [`GridIndexBuffer::join_covered_by_stale`] (full
    /// range) and each shard of
    /// [`GridIndexBuffer::join_covered_by_stale_par`] (contiguous
    /// sub-ranges), so the two entry points can never diverge. Reads
    /// only (`&self`); the band stamp for the current epoch must already
    /// be in place when `use_band` is set.
    #[allow(clippy::too_many_arguments)]
    fn stale_join_occ_range<F: FnMut(usize)>(
        &self,
        other: &GridIndexBuffer,
        occ_range: std::ops::Range<usize>,
        use_band: bool,
        r: f64,
        slop: f64,
        positions: &[Point],
        f: &mut F,
    ) {
        let epoch = self.band_epoch;
        let m = self.m;
        let r2 = r * r;
        let pair_pad = (r + 2.0 * slop) * (r + 2.0 * slop);
        let point_pad = (r + slop) * (r + slop);
        for idx in occ_range {
            let b = self.occupied[idx] as usize;
            if use_band && self.band_stamp[b] != epoch {
                // no occupied facing bucket within the 3×3: hit-free
                continue;
            }
            let lo = self.starts[b] as usize;
            let hi = self.ends[b] as usize;
            let (cx, cy) = (b % m, b / m);
            let mut slices = [Slice::EMPTY; 9];
            let count = self.facing_slices(other, cx, cy, &mut slices);
            if count == 0 {
                continue;
            }
            // bucket-pair prune on the CACHED AABB, inflated for drift
            // on both sides
            let count = self.prune_slices_by_aabb(lo, hi, &mut slices, count, pair_pad);
            if count == 0 {
                continue;
            }
            // exact distances on true positions; prunes tolerate the
            // slices' contents having drifted out of their cells
            for e in lo..hi {
                let p = positions[self.ids[e] as usize];
                let (px, py) = (p.x, p.y);
                'probe: for s in &slices[..count] {
                    let ddx = px.clamp(s.x0, s.x1) - px;
                    let ddy = py.clamp(s.y0, s.y1) - py;
                    if ddx * ddx + ddy * ddy > point_pad {
                        continue;
                    }
                    for t in s.lo as usize..s.hi as usize {
                        let q = positions[other.ids[t] as usize];
                        let dx = q.x - px;
                        let dy = q.y - py;
                        if dx * dx + dy * dy <= r2 {
                            f(self.ids[e] as usize);
                            break 'probe;
                        }
                    }
                }
            }
        }
    }

    /// Parallel form of [`GridIndexBuffer::join_covered_by_stale`]:
    /// partitions this side's occupied-bucket list into contiguous
    /// shards (balanced by live entry count), runs the shared per-bucket
    /// kernel on `pool` with each shard writing a private region of
    /// retained scratch, and appends the shard outputs to `out` in
    /// canonical shard order.
    ///
    /// Because the shards are contiguous ranges of the same
    /// occupied-bucket walk, the concatenated output is **exactly the
    /// sequence the sequential join reports — whatever the thread count
    /// or scheduling** (the kernel draws no randomness and the merge
    /// order is fixed). Allocation-free once the scratch is warm
    /// ([`GridIndexBuffer::reserve_parallel`]).
    ///
    /// # Panics
    ///
    /// As [`GridIndexBuffer::join_covered_by_stale`].
    #[allow(clippy::too_many_arguments)]
    pub fn join_covered_by_stale_par(
        &mut self,
        other: &GridIndexBuffer,
        r: f64,
        slop: f64,
        positions: &[Point],
        pool: &WorkerPool,
        out: &mut Vec<u32>,
    ) {
        assert!(
            self.shares_geometry_with(other),
            "join requires both buffers rebuilt with a shared geometry"
        );
        debug_assert!(r >= 0.0, "join radius must be nonnegative");
        debug_assert!(slop >= 0.0, "staleness bound must be nonnegative");
        assert!(
            self.m == 1
                || r + 2.0 * slop <= self.bucket_len_x.min(self.bucket_len_y) * (1.0 + 1e-12),
            "join radius {r} + twice staleness {slop} exceeds bucket side {}",
            self.bucket_len_x.min(self.bucket_len_y)
        );
        if self.len == 0 || other.len == 0 {
            return;
        }
        let use_band = other.occupied.len() < self.occupied.len();
        if use_band {
            self.stamp_band(other);
        }
        // a 1-thread pool gains nothing from sharding: run the shared
        // kernel directly (no region bookkeeping, no merge)
        let tasks = if pool.threads() <= 1 {
            1
        } else {
            pool.threads()
                .saturating_mul(4)
                .min(MAX_PAR_SHARDS)
                .min(self.occupied.len())
        };
        if tasks <= 1 {
            self.stale_join_occ_range(
                other,
                0..self.occupied.len(),
                use_band,
                r,
                slop,
                positions,
                &mut |id| out.push(id as u32),
            );
            return;
        }
        // shard boundaries over the occupied list, balanced by live
        // entry count; each shard's output region is sized by exactly
        // that count, so regions never overflow
        let total: usize = self.len;
        let per_shard = total.div_ceil(tasks);
        let mut occ_bound = [0usize; MAX_PAR_SHARDS + 1];
        let mut out_bound = [0usize; MAX_PAR_SHARDS + 1];
        {
            let mut shard = 0usize;
            let mut acc = 0usize;
            for (idx, &b) in self.occupied.iter().enumerate() {
                let b = b as usize;
                if acc >= (shard + 1) * per_shard && shard + 1 < tasks {
                    shard += 1;
                    occ_bound[shard] = idx;
                    out_bound[shard] = acc;
                }
                acc += (self.ends[b] - self.starts[b]) as usize;
            }
            debug_assert_eq!(acc, total, "live entries cover the occupied list");
            for s in shard + 1..=tasks {
                occ_bound[s] = self.occupied.len();
                out_bound[s] = acc;
            }
        }
        // the scratch is taken out of `self` so the shards can borrow it
        // mutably while the kernel reads `self` shared; put back below
        let mut par_out = std::mem::take(&mut self.par_out);
        if par_out.len() < total {
            par_out.resize(total, 0);
        }
        struct JoinShard<'a> {
            occ_lo: usize,
            occ_hi: usize,
            out: &'a mut [u32],
            hits: usize,
        }
        let mut shards: [Option<JoinShard>; MAX_PAR_SHARDS] = std::array::from_fn(|_| None);
        {
            let mut rest: &mut [u32] = &mut par_out[..total];
            for (s, slot) in shards.iter_mut().enumerate().take(tasks) {
                let take = out_bound[s + 1] - out_bound[s];
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                *slot = Some(JoinShard {
                    occ_lo: occ_bound[s],
                    occ_hi: occ_bound[s + 1],
                    out: head,
                    hits: 0,
                });
            }
        }
        run_ctx(pool, &mut shards[..tasks], |_s, shard| {
            let sh = shard.as_mut().expect("shard built above");
            let mut k = 0usize;
            self.stale_join_occ_range(
                other,
                sh.occ_lo..sh.occ_hi,
                use_band,
                r,
                slop,
                positions,
                &mut |id| {
                    sh.out[k] = id as u32;
                    k += 1;
                },
            );
            sh.hits = k;
        });
        for shard in shards.iter().take(tasks) {
            let sh = shard.as_ref().expect("shard built above");
            out.extend_from_slice(&sh.out[..sh.hits]);
        }
        self.par_out = par_out;
    }

    /// Retained capacities `(bucket_table, entries)` — stable across
    /// steady-state rebuilds, which is what the zero-allocation tests
    /// assert.
    pub fn capacities(&self) -> (usize, usize) {
        (
            self.starts.capacity().max(self.cursor.capacity()),
            self.ids
                .capacity()
                .min(self.pts.capacity())
                .min(self.gather.capacity()),
        )
    }

    #[inline]
    fn bucket_axis_range(&self, lo: f64, hi: f64, origin: f64, inv_len: f64) -> (usize, usize) {
        let a = (((lo - origin) * inv_len).floor().max(0.0) as usize).min(self.m - 1);
        let b = (((hi - origin) * inv_len).floor().max(0.0) as usize).min(self.m - 1);
        (a, b)
    }

    /// Visits indexed points within distance `r` of `p`, stopping early
    /// when `f` returns `false`; returns `false` iff stopped early.
    pub fn visit_within<F: FnMut(usize) -> bool>(&self, p: Point, r: f64, mut f: F) -> bool {
        debug_assert!(r >= 0.0, "query radius must be nonnegative");
        if self.len == 0 {
            return true;
        }
        let r2 = r * r;
        let min = self.region.min();
        let inv_x = 1.0 / self.bucket_len_x;
        let inv_y = 1.0 / self.bucket_len_y;
        let (cx0, cx1) = self.bucket_axis_range(p.x - r, p.x + r, min.x, inv_x);
        let (cy0, cy1) = self.bucket_axis_range(p.y - r, p.y + r, min.y, inv_y);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let b = cy * self.m + cx;
                let lo = self.starts[b] as usize;
                let hi = self.ends[b] as usize;
                for e in lo..hi {
                    let (x, y) = self.pts[e];
                    let dx = x - p.x;
                    let dy = y - p.y;
                    if dx * dx + dy * dy <= r2 && !f(self.ids[e] as usize) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Calls `f(id)` for every indexed point within distance `r` of `p`.
    #[inline]
    pub fn for_each_within<F: FnMut(usize)>(&self, p: Point, r: f64, mut f: F) {
        self.visit_within(p, r, |i| {
            f(i);
            true
        });
    }

    /// Whether any indexed point lies within distance `r` of `p`
    /// (early-exiting at the first hit).
    #[inline]
    pub fn any_within(&self, p: Point, r: f64) -> bool {
        !self.visit_within(p, r, |_| false)
    }

    /// Calls `f(id, position)` for every indexed point inside the
    /// axis-aligned rectangle `[x0, x1] × [y0, y1]` (bounds
    /// **inclusive**) — the halo read of a sharded world: a neighbor
    /// shard snapshots the band of this buffer's entries within the
    /// transmit radius of its own boundary.
    ///
    /// The query rectangle may extend arbitrarily far outside this
    /// buffer's region: the bucket sweep clamps into the table (edge
    /// buckets absorb clamped out-of-region entries), and every
    /// candidate is filtered against its **exact stored coordinates**,
    /// so clamping never adds a point outside the rectangle and
    /// out-of-region entries parked in edge buckets are still found
    /// when they do lie inside it. Entries are visited in bucket order
    /// (row-major; order within a bucket unspecified) — callers needing
    /// a canonical sequence sort the ids they collect.
    ///
    /// # Examples
    ///
    /// ```
    /// use fastflood_geom::{Point, Rect};
    /// use fastflood_spatial::GridIndexBuffer;
    ///
    /// let region = Rect::square(10.0)?;
    /// let pts = vec![Point::new(1.0, 1.0), Point::new(9.0, 9.0)];
    /// let mut buf = GridIndexBuffer::new();
    /// buf.rebuild(region, 2.0, &pts)?;
    /// let mut hits = Vec::new();
    /// // band reaching past the region's left edge: still exact
    /// buf.for_each_in_rect(-5.0, 2.0, 0.0, 10.0, |id, _| hits.push(id));
    /// assert_eq!(hits, vec![0]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn for_each_in_rect<F: FnMut(usize, Point)>(
        &self,
        x0: f64,
        x1: f64,
        y0: f64,
        y1: f64,
        mut f: F,
    ) {
        debug_assert!(x0 <= x1 && y0 <= y1, "rect bounds must be ordered");
        if self.len == 0 {
            return;
        }
        let min = self.region.min();
        let inv_x = 1.0 / self.bucket_len_x;
        let inv_y = 1.0 / self.bucket_len_y;
        let (cx0, cx1) = self.bucket_axis_range(x0, x1, min.x, inv_x);
        let (cy0, cy1) = self.bucket_axis_range(y0, y1, min.y, inv_y);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let b = cy * self.m + cx;
                let lo = self.starts[b] as usize;
                let hi = self.ends[b] as usize;
                for e in lo..hi {
                    let (x, y) = self.pts[e];
                    if x >= x0 && x <= x1 && y >= y0 && y <= y1 {
                        f(self.ids[e] as usize, Point::new(x, y));
                    }
                }
            }
        }
    }
}

/// Slot capacity of a slack-layout row currently holding `count` live
/// entries: proportional headroom plus a constant floor, so row
/// occupancy can random-walk under drift (relocations in ≈ relocations
/// out, but excursions happen) without forcing a re-layout, while total
/// storage stays within `len + len/4 + 8·rows`.
#[inline]
fn slack_cap(count: u32) -> u32 {
    count + count / 4 + 8
}

/// THE binning formula of `GridIndexBuffer`: reciprocal multiply with
/// truncating casts (float→int casts saturate in Rust, negatives to 0,
/// so the cast is the floor-and-clamp-low in one instruction).
///
/// Every buffer path — rebuild counting/scatter, incremental
/// removal/insertion/relocation, re-layout — must bin through this one
/// function with the same `inv_*` values (`1.0 / bucket_len`): mixing
///, say, a division-based variant can disagree by one bucket for
/// coordinates within an ulp of a row boundary, and a removal that
/// recomputes a different bucket than the one an entry was filed under
/// corrupts two rows' bookkeeping.
#[inline]
fn bin(x: f64, y: f64, min: Point, inv_x: f64, inv_y: f64, m: usize) -> usize {
    let cx = (((x - min.x) * inv_x) as usize).min(m - 1);
    let cy = (((y - min.y) * inv_y) as usize).min(m - 1);
    cy * m + cx
}

/// One facing CSR slice of a bucket join, with the (possibly
/// unbounded) cell rectangle backing the per-point prune.
#[derive(Clone, Copy)]
struct Slice {
    lo: u32,
    hi: u32,
    x0: f64,
    x1: f64,
    y0: f64,
    y1: f64,
}

impl Slice {
    const EMPTY: Slice = Slice {
        lo: 0,
        hi: 0,
        x0: 0.0,
        x1: 0.0,
        y0: 0.0,
        y1: 0.0,
    };
}

/// An `O(n)`-per-query reference index with the same semantics as
/// [`GridIndex`].
///
/// Exists as the correctness oracle for property tests and as the baseline
/// in the `spatial` Criterion bench; not intended for production use.
#[derive(Debug, Clone)]
pub struct BruteForceIndex {
    positions: Vec<Point>,
}

impl BruteForceIndex {
    /// Builds the oracle from a slice of positions.
    pub fn build(positions: &[Point]) -> BruteForceIndex {
        BruteForceIndex {
            positions: positions.to_vec(),
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the index holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Indices of all points within distance `r` of `p`.
    pub fn indices_within(&self, p: Point, r: f64) -> Vec<usize> {
        let r2 = r * r;
        self.positions
            .iter()
            .enumerate()
            .filter(|(_, q)| p.euclid_sq(**q) <= r2)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of points within distance `r` of `p`.
    pub fn count_within(&self, p: Point, r: f64) -> usize {
        self.indices_within(p, r).len()
    }

    /// The index and distance of the point nearest to `p`.
    pub fn nearest(&self, p: Point) -> Option<(usize, f64)> {
        self.positions
            .iter()
            .enumerate()
            .map(|(i, q)| (i, p.euclid(*q)))
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
    }

    /// All unordered pairs `(i, j)`, `i < j`, within distance `r`.
    pub fn pairs_within(&self, r: f64) -> Vec<(usize, usize)> {
        let r2 = r * r;
        let mut out = Vec::new();
        for i in 0..self.positions.len() {
            for j in i + 1..self.positions.len() {
                if self.positions[i].euclid_sq(self.positions[j]) <= r2 {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Rect {
        Rect::square(100.0).unwrap()
    }

    #[test]
    fn parallel_stale_join_reports_the_sequential_sequence() {
        // pseudo-random population, many occupied buckets: the parallel
        // join must report exactly the sequential output SEQUENCE (not
        // just set) at every thread count
        let mut seed = 123456789u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        let n = 600;
        let mut pts: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        let members: Vec<u32> = (0..n as u32 / 2).collect();
        let tx_ids: Vec<u32> = (n as u32 / 2..n as u32).collect();
        let mut inc = GridIndexBuffer::new();
        inc.rebuild_incremental(region(), 8.0, &pts, &members, n, &[])
            .unwrap();
        let mut tx = GridIndexBuffer::new();
        tx.rebuild_subset_shared(region(), 8.0, &pts, &tx_ids, n)
            .unwrap();
        // drift everyone a little below the slop
        for p in pts.iter_mut() {
            *p = Point::new(
                (p.x + 0.3 * next()).min(100.0),
                (p.y + 0.3 * next()).min(100.0),
            );
        }
        let mut sequential = Vec::new();
        inc.join_covered_by_stale(&tx, 2.0, 0.5, &pts, |id| sequential.push(id as u32));
        assert!(!sequential.is_empty(), "the scenario must produce hits");
        for threads in [1usize, 2, 5, 16] {
            let pool = WorkerPool::new(threads);
            let mut parallel = Vec::new();
            inc.join_covered_by_stale_par(&tx, 2.0, 0.5, &pts, &pool, &mut parallel);
            assert_eq!(parallel, sequential, "{threads} threads");
        }
    }

    #[test]
    fn parallel_update_moved_matches_sequential_entry_set() {
        // the sharded refresh must produce the same entry set, slot-map
        // coherence, and membership as the sequential pass, through
        // drift, churn, and slack-overflow re-layouts
        let mut seed = 987654321u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        let n = 500usize;
        let mut pts: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        let members: Vec<u32> = (0..n as u32).collect();
        let mut seq = GridIndexBuffer::new();
        let mut par = GridIndexBuffer::new();
        seq.rebuild_incremental(region(), 6.0, &pts, &members, n, &[])
            .unwrap();
        par.rebuild_incremental(region(), 6.0, &pts, &members, n, &[])
            .unwrap();
        let pool = WorkerPool::new(3);
        for round in 0..12 {
            // drift: every agent walks; some cross bucket boundaries
            for p in pts.iter_mut() {
                *p = Point::new(
                    (p.x + 2.5 * (next() - 0.5)).clamp(0.0, 100.0),
                    (p.y + 2.5 * (next() - 0.5)).clamp(0.0, 100.0),
                );
            }
            // churn: a couple of ids leave and rejoin alternately
            let (removed, inserted): (Vec<u32>, Vec<u32>) = if round % 2 == 0 {
                (vec![7, 11], vec![])
            } else {
                (vec![], vec![7, 11])
            };
            let s = seq.update_moved(&pts, &removed, &inserted).unwrap();
            let p = par
                .update_moved_par(&pts, &removed, &inserted, &pool)
                .unwrap();
            assert_eq!(s.relocated, p.relocated, "round {round}");
            assert_eq!(seq.len(), par.len(), "round {round}");
            let mut seq_entries = Vec::new();
            seq.for_each_entry(|b, id, pt| {
                seq_entries.push((b, id, pt.x.to_bits(), pt.y.to_bits()))
            });
            let mut par_entries = Vec::new();
            par.for_each_entry(|b, id, pt| {
                par_entries.push((b, id, pt.x.to_bits(), pt.y.to_bits()))
            });
            seq_entries.sort_unstable();
            par_entries.sort_unstable();
            assert_eq!(
                seq_entries, par_entries,
                "round {round}: entry sets diverged"
            );
            assert_eq!(
                seq.occupied_buckets(),
                par.occupied_buckets(),
                "round {round}: occupied lists diverged"
            );
            // slot-map coherence: a follow-up surgery through the map
            // must work on the parallel buffer (exercised next round)
        }
        // the parallel buffer's slot map stays usable for removals
        par.update_membership(&pts, &[3, 99, 250], &[]).unwrap();
        assert_eq!(par.len(), n - 3);
    }

    #[test]
    fn banded_stale_join_is_stable_across_repeated_joins() {
        // repeated joins on the same buffer reuse the epoch-stamped band
        // scratch; every round must report the same set
        let mut pts = vec![
            Point::new(10.0, 10.0),
            Point::new(30.0, 30.0),
            Point::new(52.0, 52.0),
            Point::new(75.0, 75.0),
            Point::new(90.0, 10.0),
            Point::new(11.0, 11.5),
        ];
        let members: Vec<u32> = (0..5).collect();
        let mut inc = GridIndexBuffer::new();
        inc.rebuild_incremental(region(), 8.0, &pts, &members, pts.len(), &[])
            .unwrap();
        let mut tx = GridIndexBuffer::new();
        // one clustered transmitter: fewer occupied tx buckets than
        // member buckets, so the band path engages
        tx.rebuild_subset_shared(region(), 8.0, &pts, &[5], pts.len())
            .unwrap();
        for round in 0..3 {
            // drift below the announced slop, then join
            pts[0] = Point::new(10.0 + 0.1 * round as f64, 10.0);
            let mut got = Vec::new();
            inc.join_covered_by_stale(&tx, 2.0, 0.5, &pts, |id| got.push(id));
            assert_eq!(got, vec![0], "round {round}");
        }
    }

    #[test]
    fn build_validates() {
        assert!(GridIndex::build(region(), 0.0, &[]).is_err());
        assert!(GridIndex::build(region(), -1.0, &[]).is_err());
        assert!(GridIndex::build(region(), f64::NAN, &[]).is_err());
        let bad = [Point::new(f64::NAN, 0.0)];
        assert!(matches!(
            GridIndex::build(region(), 1.0, &bad),
            Err(SpatialError::NotFinite { index: 0 })
        ));
    }

    #[test]
    fn empty_index() {
        let idx = GridIndex::build(region(), 5.0, &[]).unwrap();
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.count_within(Point::new(50.0, 50.0), 100.0), 0);
        assert!(!idx.any_within(Point::new(0.0, 0.0), 100.0, |_| true));
    }

    #[test]
    fn query_includes_boundary_distance() {
        let pts = [Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
        let idx = GridIndex::build(region(), 10.0, &pts).unwrap();
        // exactly at distance 5: inclusive
        assert_eq!(idx.count_within(Point::new(0.0, 0.0), 5.0), 2);
        assert_eq!(idx.count_within(Point::new(0.0, 0.0), 4.999), 1);
    }

    #[test]
    fn query_radius_larger_than_bucket() {
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 10.0, 50.0)).collect();
        let idx = GridIndex::build(region(), 5.0, &pts).unwrap();
        // radius 25 spans several buckets
        let mut hits = idx.indices_within(Point::new(45.0, 50.0), 25.0);
        hits.sort();
        assert_eq!(hits, vec![2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn any_within_early_exit_and_pred() {
        let pts = [
            Point::new(1.0, 1.0),
            Point::new(2.0, 1.0),
            Point::new(90.0, 90.0),
        ];
        let idx = GridIndex::build(region(), 5.0, &pts).unwrap();
        assert!(idx.any_within(Point::new(0.0, 0.0), 3.0, |_| true));
        // predicate filters
        assert!(idx.any_within(Point::new(0.0, 0.0), 3.0, |i| i == 1));
        assert!(!idx.any_within(Point::new(0.0, 0.0), 3.0, |i| i == 2));
        // nothing near the far corner within 3
        assert!(!idx.any_within(Point::new(60.0, 60.0), 3.0, |_| true));
    }

    #[test]
    fn visit_within_early_stop_reports() {
        let pts = [Point::new(1.0, 1.0), Point::new(1.5, 1.0)];
        let idx = GridIndex::build(region(), 5.0, &pts).unwrap();
        let mut seen = 0;
        let completed = idx.visit_within(Point::new(1.0, 1.0), 2.0, |_, _| {
            seen += 1;
            false // stop immediately
        });
        assert!(!completed);
        assert_eq!(seen, 1);
        let completed = idx.visit_within(Point::new(1.0, 1.0), 2.0, |_, _| true);
        assert!(completed);
    }

    #[test]
    fn pairs_match_brute_force_on_grid_pattern() {
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::new(i as f64 * 7.3 + 1.0, j as f64 * 6.1 + 2.0));
            }
        }
        let r = 8.0;
        let idx = GridIndex::for_radius(region(), r, &pts).unwrap();
        let mut got = Vec::new();
        idx.for_each_pair_within(r, |i, j| got.push((i, j)));
        got.sort();
        let mut expected = BruteForceIndex::build(&pts).pairs_within(r);
        expected.sort();
        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds bucket side")]
    fn pair_query_radius_too_large_panics() {
        let pts = [Point::new(1.0, 1.0)];
        let idx = GridIndex::build(region(), 5.0, &pts).unwrap();
        // bucket_len is at least 5 but far below 1000
        idx.for_each_pair_within(1000.0, |_, _| {});
    }

    #[test]
    fn points_on_region_border_are_indexed() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(100.0, 0.0),
            Point::new(0.0, 100.0),
        ];
        let idx = GridIndex::build(region(), 7.0, &pts).unwrap();
        for (i, &p) in pts.iter().enumerate() {
            assert_eq!(idx.indices_within(p, 0.0), vec![i]);
        }
    }

    #[test]
    fn coincident_points_all_reported() {
        let p = Point::new(33.0, 66.0);
        let pts = [p, p, p];
        let idx = GridIndex::build(region(), 4.0, &pts).unwrap();
        let mut hits = idx.indices_within(p, 0.0);
        hits.sort();
        assert_eq!(hits, vec![0, 1, 2]);
        let mut pairs = Vec::new();
        idx.for_each_pair_within(4.0, |i, j| pairs.push((i, j)));
        pairs.sort();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn bucket_cap_keeps_memory_reasonable() {
        // tiny radius over a big region: bucket count must stay near 2·√n
        let pts = [Point::new(1.0, 1.0), Point::new(2.0, 2.0)];
        let idx = GridIndex::build(region(), 1e-6, &pts).unwrap();
        assert!(idx.buckets_per_axis() <= 4);
        // queries still correct
        assert_eq!(idx.count_within(Point::new(1.0, 1.0), 2.0), 2);
    }

    #[test]
    fn brute_force_index_api() {
        let pts = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let b = BruteForceIndex::build(&pts);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.count_within(Point::new(0.0, 0.0), 0.5), 1);
        assert_eq!(b.pairs_within(1.0), vec![(0, 1)]);
        assert!(BruteForceIndex::build(&[]).is_empty());
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = [
            Point::new(10.0, 10.0),
            Point::new(50.0, 50.0),
            Point::new(90.0, 10.0),
            Point::new(10.2, 10.1),
        ];
        let idx = GridIndex::build(region(), 5.0, &pts).unwrap();
        let brute = BruteForceIndex::build(&pts);
        for q in [
            Point::new(0.0, 0.0),
            Point::new(49.0, 51.0),
            Point::new(99.0, 1.0),
            Point::new(10.1, 10.05),
        ] {
            let (gi, gd) = idx.nearest(q).unwrap();
            let (bi, bd) = brute.nearest(q).unwrap();
            assert_eq!(gi, bi, "nearest index at {q}");
            assert!((gd - bd).abs() < 1e-12);
        }
        assert!(GridIndex::build(region(), 5.0, &[])
            .unwrap()
            .nearest(Point::ORIGIN)
            .is_none());
        assert!(BruteForceIndex::build(&[]).nearest(Point::ORIGIN).is_none());
    }

    #[test]
    fn nearest_far_outside_region() {
        let pts = [Point::new(1.0, 1.0)];
        let idx = GridIndex::build(region(), 2.0, &pts).unwrap();
        let (i, d) = idx.nearest(Point::new(500.0, 500.0)).unwrap();
        assert_eq!(i, 0);
        assert!((d - Point::new(500.0, 500.0).euclid(pts[0])).abs() < 1e-9);
    }

    #[test]
    fn error_display() {
        assert!(!SpatialError::BadBucketSize(0.0).to_string().is_empty());
        assert!(!SpatialError::NotFinite { index: 3 }.to_string().is_empty());
    }

    #[test]
    fn buffer_matches_grid_index_queries() {
        let mut pts = Vec::new();
        for i in 0..17 {
            for j in 0..17 {
                pts.push(Point::new(i as f64 * 5.9 + 0.3, j as f64 * 5.7 + 0.9));
            }
        }
        let idx = GridIndex::build(region(), 6.0, &pts).unwrap();
        let mut buf = GridIndexBuffer::new();
        buf.rebuild(region(), 6.0, &pts).unwrap();
        assert_eq!(buf.len(), pts.len());
        for q in [
            Point::new(0.0, 0.0),
            Point::new(50.0, 50.0),
            Point::new(99.0, 1.0),
            Point::new(33.3, 66.6),
        ] {
            for r in [0.5, 4.0, 11.0, 30.0] {
                let mut expected = idx.indices_within(q, r);
                expected.sort();
                let mut got = Vec::new();
                buf.for_each_within(q, r, |i| got.push(i));
                got.sort();
                assert_eq!(got, expected, "query {q} r {r}");
                assert_eq!(buf.any_within(q, r), !expected.is_empty());
            }
        }
    }

    #[test]
    fn buffer_subset_reports_original_ids() {
        let pts = [
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(3.0, 3.0),
            Point::new(90.0, 90.0),
        ];
        let mut buf = GridIndexBuffer::new();
        buf.rebuild_subset(region(), 5.0, &pts, &[1, 3]).unwrap();
        assert_eq!(buf.len(), 2);
        let mut got = Vec::new();
        buf.for_each_within(Point::new(2.0, 2.0), 2.0, |i| got.push(i));
        assert_eq!(got, vec![1], "only subset members are indexed");
        assert!(buf.any_within(Point::new(91.0, 91.0), 3.0));
        assert!(
            !buf.any_within(Point::new(1.0, 1.0), 0.5),
            "0 not in subset"
        );
    }

    #[test]
    fn buffer_rebuild_reuses_capacity() {
        let mut pts: Vec<Point> = (0..500)
            .map(|i| Point::new((i % 23) as f64 * 4.0 + 1.0, (i % 19) as f64 * 5.0 + 1.0))
            .collect();
        let mut buf = GridIndexBuffer::new();
        buf.rebuild(region(), 5.0, &pts).unwrap();
        let caps = buf.capacities();
        // shrinking subsets and moved positions must not grow storage
        let all: Vec<u32> = (0..pts.len() as u32).collect();
        for round in 0..50 {
            for p in &mut pts {
                *p = Point::new((p.x + 7.3) % 100.0, (p.y + 3.1) % 100.0);
            }
            let take = pts.len() - round * 9;
            buf.rebuild_subset(region(), 5.0, &pts, &all[..take])
                .unwrap();
            assert_eq!(buf.capacities(), caps, "round {round} grew storage");
            assert_eq!(buf.len(), take);
        }
    }

    #[test]
    fn buffer_validates_input() {
        let mut buf = GridIndexBuffer::new();
        assert!(buf.rebuild(region(), 0.0, &[]).is_err());
        assert!(buf.rebuild(region(), f64::NAN, &[]).is_err());
        let bad = [Point::new(0.0, f64::INFINITY)];
        assert!(matches!(
            buf.rebuild(region(), 1.0, &bad),
            Err(SpatialError::NotFinite { index: 0 })
        ));
        // empty buffer answers queries
        buf.rebuild(region(), 5.0, &[]).unwrap();
        assert!(buf.is_empty());
        assert!(!buf.any_within(Point::new(1.0, 1.0), 50.0));
    }

    #[test]
    fn occupied_buckets_are_sorted_and_exact() {
        let pts = [
            Point::new(1.0, 1.0),
            Point::new(2.0, 1.5), // same bucket as the first
            Point::new(90.0, 90.0),
        ];
        let mut buf = GridIndexBuffer::new();
        buf.rebuild(region(), 10.0, &pts).unwrap();
        let occ = buf.occupied_buckets();
        assert_eq!(occ.len(), 2, "two distinct buckets occupied");
        assert!(occ.windows(2).all(|w| w[0] < w[1]), "ascending");
        let total: usize = occ
            .iter()
            .map(|&b| {
                let mut n = 0;
                // count via ids layout: entries of bucket b
                let b = b as usize;
                n += (buf.starts[b + 1] - buf.starts[b]) as usize;
                n
            })
            .sum();
        assert_eq!(total, pts.len(), "occupied buckets hold every point");
        buf.rebuild(region(), 10.0, &[]).unwrap();
        assert!(buf.occupied_buckets().is_empty());
    }

    #[test]
    fn shared_geometry_is_shared_and_join_requires_it() {
        let pts: Vec<Point> = (0..40)
            .map(|i| Point::new((i % 7) as f64 * 13.0 + 1.0, (i / 7) as f64 * 15.0 + 2.0))
            .collect();
        let mut a = GridIndexBuffer::new();
        let mut b = GridIndexBuffer::new();
        // subset sizes differ wildly; shared geometry must still match
        a.rebuild_subset_shared(region(), 5.0, &pts, &[0, 1], pts.len())
            .unwrap();
        b.rebuild_subset_shared(
            region(),
            5.0,
            &pts,
            &(2..40).collect::<Vec<u32>>(),
            pts.len(),
        )
        .unwrap();
        assert!(a.shares_geometry_with(&b));
        // plain subset rebuilds derive geometry from the subset size and
        // generally do NOT share
        let mut c = GridIndexBuffer::new();
        c.rebuild_subset(region(), 5.0, &pts, &[0, 1]).unwrap();
        assert!(!c.shares_geometry_with(&b));
    }

    #[test]
    #[should_panic(expected = "shared geometry")]
    fn join_panics_on_mismatched_geometry() {
        let pts = [Point::new(1.0, 1.0), Point::new(2.0, 2.0)];
        let mut a = GridIndexBuffer::new();
        let mut b = GridIndexBuffer::new();
        a.rebuild_subset(region(), 5.0, &pts, &[0]).unwrap();
        b.rebuild_subset_shared(region(), 5.0, &pts, &[1], 10_000)
            .unwrap();
        a.join_covered_by(&b, 5.0, |_| {});
    }

    fn join_vs_brute(pts: &[Point], left: &[u32], right: &[u32], bucket: f64, r: f64) {
        let mut a = GridIndexBuffer::new();
        let mut b = GridIndexBuffer::new();
        a.rebuild_subset_shared(region(), bucket, pts, left, pts.len())
            .unwrap();
        b.rebuild_subset_shared(region(), bucket, pts, right, pts.len())
            .unwrap();
        let mut got = Vec::new();
        a.join_covered_by(&b, r, |id| got.push(id));
        got.sort_unstable();
        let r2 = r * r;
        let expected: Vec<usize> = left
            .iter()
            .filter(|&&u| {
                right
                    .iter()
                    .any(|&t| pts[u as usize].euclid_sq(pts[t as usize]) <= r2)
            })
            .map(|&u| u as usize)
            .collect();
        assert_eq!(got, expected, "left {left:?} right {right:?} r {r}");
        // no duplicates: each id reported at most once
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn join_matches_brute_force_dense_and_sparse() {
        let mut pts = Vec::new();
        for i in 0..14 {
            for j in 0..14 {
                pts.push(Point::new(i as f64 * 7.1 + 0.4, j as f64 * 6.9 + 0.8));
            }
        }
        let n = pts.len() as u32;
        let left: Vec<u32> = (0..n).filter(|i| i % 3 != 0).collect();
        let right: Vec<u32> = (0..n).filter(|i| i % 3 == 0).collect();
        for r in [0.5, 3.0, 7.0] {
            join_vs_brute(&pts, &left, &right, 7.0, r);
            // swapped roles
            join_vs_brute(&pts, &right, &left, 7.0, r);
        }
        // sparse: a handful of points, huge empty region
        let sparse = [
            Point::new(1.0, 1.0),
            Point::new(4.0, 1.0),
            Point::new(99.0, 99.0),
            Point::new(50.0, 2.0),
        ];
        join_vs_brute(&sparse, &[0, 2], &[1, 3], 5.0, 4.0);
        join_vs_brute(&sparse, &[0, 1, 2, 3], &[], 5.0, 4.0);
        join_vs_brute(&sparse, &[], &[0, 1], 5.0, 4.0);
    }

    #[test]
    fn join_includes_boundary_distance_and_coincident_points() {
        let pts = [
            Point::new(10.0, 10.0),
            Point::new(13.0, 14.0), // exactly distance 5 from the first
            Point::new(10.0, 10.0), // coincident with the first
        ];
        join_vs_brute(&pts, &[1, 2], &[0], 5.0, 5.0);
        join_vs_brute(&pts, &[1, 2], &[0], 5.0, 4.999);
    }

    #[test]
    fn join_handles_clamped_out_of_region_points() {
        // positions outside the region clamp into border buckets; the
        // prune must not discard them
        let pts = [
            Point::new(105.0, 50.0), // outside, clamps into the east border
            Point::new(103.0, 50.0), // outside, within r of the first
            Point::new(-4.0, -4.0),  // outside the SW corner
            Point::new(1.0, 1.0),
        ];
        join_vs_brute(&pts, &[0, 2], &[1, 3], 8.0, 8.0);
    }

    #[test]
    fn ids_are_in_bucket_order_and_cover_subset() {
        let pts: Vec<Point> = (0..60)
            .map(|i| Point::new((i * 37 % 100) as f64, (i * 53 % 100) as f64))
            .collect();
        let subset: Vec<u32> = (0..60).step_by(2).collect();
        let mut buf = GridIndexBuffer::new();
        buf.rebuild_subset_shared(region(), 10.0, &pts, &subset, pts.len())
            .unwrap();
        let mut ids = buf.ids().to_vec();
        assert_eq!(ids.len(), subset.len());
        ids.sort_unstable();
        assert_eq!(ids, subset, "bucket order is a permutation of the subset");
    }

    #[test]
    fn non_square_region_keeps_bucket_side_on_both_axes() {
        // regression: geometry sized by the longer side made the short
        // axis's buckets smaller than bucket_size, so the join's 3×3
        // guarantee broke (panicking guard) on non-square regions
        let region = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 50.0)).unwrap();
        let pts = [
            Point::new(10.0, 10.0),
            Point::new(13.0, 13.0),
            Point::new(90.0, 40.0),
        ];
        let mut a = GridIndexBuffer::new();
        let mut b = GridIndexBuffer::new();
        a.rebuild_subset_shared(region, 5.0, &pts, &[0, 2], 10_000)
            .unwrap();
        b.rebuild_subset_shared(region, 5.0, &pts, &[1], 10_000)
            .unwrap();
        let mut got = Vec::new();
        a.join_covered_by(&b, 5.0, |id| got.push(id));
        assert_eq!(got, vec![0], "distance √18 < 5 from point 1");
        // plain queries agree with brute force on the same region
        let mut buf = GridIndexBuffer::new();
        buf.rebuild(region, 5.0, &pts).unwrap();
        let mut hits = Vec::new();
        buf.for_each_within(Point::new(11.0, 11.0), 5.0, |i| hits.push(i));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn failed_rebuild_degrades_to_empty_index() {
        // regression: a NotFinite error mid-rebuild used to leave
        // partially accumulated counts over stale entries — queries on
        // the errored buffer returned garbage ids instead of nothing
        let good = [Point::new(1.0, 1.0), Point::new(2.0, 2.0)];
        let mut buf = GridIndexBuffer::new();
        buf.rebuild(region(), 5.0, &good).unwrap();
        assert!(buf.any_within(Point::new(1.0, 1.0), 1.0));

        let bad = [Point::new(1.0, 1.0), Point::new(f64::NAN, 2.0)];
        assert!(matches!(
            buf.rebuild(region(), 5.0, &bad),
            Err(SpatialError::NotFinite { index: 1 })
        ));
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
        assert!(buf.occupied_buckets().is_empty());
        assert!(buf.ids().is_empty());
        assert!(!buf.any_within(Point::new(1.0, 1.0), 50.0));
        let mut seen = 0;
        buf.for_each_within(Point::new(1.0, 1.0), 50.0, |_| seen += 1);
        assert_eq!(seen, 0, "errored buffer must act empty");
    }

    /// Sorted `(bucket, id)` snapshot of a buffer's live entries.
    fn entry_set(buf: &GridIndexBuffer) -> Vec<(usize, usize)> {
        let mut v = Vec::new();
        buf.for_each_entry(|b, id, _| v.push((b, id)));
        v.sort_unstable();
        v
    }

    #[test]
    fn incremental_tracks_drift_and_matches_fresh_rebuild() {
        // every point marches diagonally, guaranteeing bucket crossings
        // and, eventually, slack overflow (a re-layout)
        let mut pts: Vec<Point> = (0..300)
            .map(|i| Point::new((i % 17) as f64 * 5.3 + 0.2, (i / 17) as f64 * 5.1 + 0.4))
            .collect();
        let subset: Vec<u32> = (0..300).collect();
        let mut inc = GridIndexBuffer::new();
        inc.rebuild_incremental(region(), 8.0, &pts, &subset, pts.len(), &[])
            .unwrap();
        assert!(inc.is_incremental());
        let mut fresh = GridIndexBuffer::new();
        let mut total_relocated = 0;
        for round in 0..60 {
            for p in &mut pts {
                *p = Point::new((p.x + 0.9).min(99.9), (p.y + 0.7).min(99.9));
            }
            let stats = inc.update_moved(&pts, &[], &[]).unwrap();
            total_relocated += stats.relocated;
            fresh
                .rebuild_subset_shared(region(), 8.0, &pts, &subset, pts.len())
                .unwrap();
            assert!(inc.shares_geometry_with(&fresh), "round {round}");
            assert_eq!(entry_set(&inc), entry_set(&fresh), "round {round}");
            assert_eq!(
                inc.occupied_buckets(),
                fresh.occupied_buckets(),
                "round {round}"
            );
        }
        assert!(total_relocated > 0, "drift must relocate entries");
        assert!(inc.relayouts() > 0, "sustained drift must overflow slack");
    }

    #[test]
    fn incremental_membership_and_join_match_tight_buffers() {
        let pts: Vec<Point> = (0..120)
            .map(|i| Point::new((i * 37 % 100) as f64, (i * 53 % 100) as f64))
            .collect();
        // membership split drifts over rounds: ids migrate from the
        // "uninformed" incremental side to a tight "transmitter" side
        let mut members: Vec<u32> = (0..120).collect();
        let mut inc = GridIndexBuffer::new();
        inc.rebuild_incremental(region(), 10.0, &pts, &members, pts.len(), &[])
            .unwrap();
        let mut gone: Vec<u32> = Vec::new();
        for round in 0..10 {
            // remove every 7th remaining member, reinstate one old one
            let removed: Vec<u32> = members.iter().copied().step_by(7).collect();
            members.retain(|id| !removed.contains(id));
            let inserted: Vec<u32> = gone.pop().into_iter().collect();
            members.extend(&inserted);
            gone.extend(&removed);
            inc.update_moved(&pts, &removed, &inserted).unwrap();
            assert_eq!(inc.len(), members.len(), "round {round}");

            let mut fresh = GridIndexBuffer::new();
            fresh
                .rebuild_subset_shared(region(), 10.0, &pts, &members, pts.len())
                .unwrap();
            assert_eq!(entry_set(&inc), entry_set(&fresh), "round {round}");

            // the incremental side joins against a tight shared-geometry
            // buffer exactly as a tight buffer would
            let mut tx = GridIndexBuffer::new();
            tx.rebuild_subset_shared(region(), 10.0, &pts, &gone, pts.len())
                .unwrap();
            let mut got = Vec::new();
            inc.join_covered_by(&tx, 10.0, |id| got.push(id));
            got.sort_unstable();
            let mut expected = Vec::new();
            fresh.join_covered_by(&tx, 10.0, |id| expected.push(id));
            expected.sort_unstable();
            assert_eq!(got, expected, "round {round}");
        }
    }

    #[test]
    fn expected_headroom_absorbs_monotone_growth_without_relayouts() {
        // transmit-roster pattern: membership only grows, every future
        // member announced up front; the reserved headroom must absorb
        // the whole influx without a single slack-overflow re-layout
        let n = 500usize;
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new(((i * 37) % 100) as f64, ((i * 53) % 100) as f64))
            .collect();
        let expected: Vec<u32> = (1..n as u32).collect();
        let mut buf = GridIndexBuffer::new();
        buf.rebuild_incremental(region(), 8.0, &pts, &[0], n, &expected)
            .unwrap();
        let mut next = 1u32;
        while (next as usize) < n {
            let batch: Vec<u32> = (next..(next + 7).min(n as u32)).collect();
            next += batch.len() as u32;
            buf.update_moved(&pts, &[], &batch).unwrap();
        }
        assert_eq!(buf.len(), n);
        assert_eq!(buf.relayouts(), 0, "headroom must absorb monotone growth");
        // without the announcement the same influx must have overflowed
        let mut bare = GridIndexBuffer::new();
        bare.rebuild_incremental(region(), 8.0, &pts, &[0], n, &[])
            .unwrap();
        let all: Vec<u32> = (1..n as u32).collect();
        bare.update_moved(&pts, &[], &all).unwrap();
        assert!(
            bare.relayouts() > 0,
            "plain slack cannot absorb n-1 inserts"
        );
        assert_eq!(bare.len(), n);
    }

    #[test]
    #[should_panic(expected = "requires a slack layout")]
    fn update_moved_requires_incremental_layout() {
        let pts = [Point::new(1.0, 1.0)];
        let mut buf = GridIndexBuffer::new();
        buf.rebuild(region(), 5.0, &pts).unwrap();
        let _ = buf.update_moved(&pts, &[], &[]);
    }

    #[test]
    #[should_panic(expected = "requires a tight layout")]
    fn ids_panics_on_slack_layout() {
        let pts = [Point::new(1.0, 1.0)];
        let mut buf = GridIndexBuffer::new();
        buf.rebuild_incremental(region(), 5.0, &pts, &[0], 1, &[])
            .unwrap();
        let _ = buf.ids();
    }

    #[test]
    fn failed_update_degrades_to_empty_index() {
        let mut pts = vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)];
        let mut buf = GridIndexBuffer::new();
        buf.rebuild_incremental(region(), 5.0, &pts, &[0, 1], 2, &[])
            .unwrap();
        pts[1] = Point::new(f64::NAN, 2.0);
        assert!(matches!(
            buf.update_moved(&pts, &[], &[]),
            Err(SpatialError::NotFinite { index: 1 })
        ));
        assert!(buf.is_empty());
        assert!(!buf.is_incremental());
        assert!(buf.occupied_buckets().is_empty());
        assert!(!buf.any_within(Point::new(1.0, 1.0), 50.0));
    }

    #[test]
    fn incremental_updates_reuse_capacity_after_reserve() {
        let n = 400usize;
        let mut pts: Vec<Point> = (0..n)
            .map(|i| Point::new((i % 21) as f64 * 4.7 + 0.5, (i % 23) as f64 * 4.3 + 0.5))
            .collect();
        let subset: Vec<u32> = (0..n as u32).collect();
        let mut buf = GridIndexBuffer::new();
        buf.reserve(n);
        buf.rebuild_incremental(region(), 6.0, &pts, &subset, n, &[])
            .unwrap();
        let caps = buf.capacities();
        for round in 0..80 {
            for p in &mut pts {
                // contraction piles everyone into the corner bucket, so
                // rows must overflow their slack and re-layout
                *p = Point::new(p.x * 0.93 + 0.1, p.y * 0.93 + 0.1);
            }
            buf.update_moved(&pts, &[], &[]).unwrap();
            assert_eq!(buf.capacities(), caps, "round {round} grew storage");
        }
        assert!(buf.relayouts() > 0, "contracting drift must re-layout");
    }

    #[test]
    fn clamped_out_of_region_points_survive_updates() {
        // positions outside the region clamp into border buckets; moves
        // that exit/enter the region must relocate coherently
        let mut pts = vec![Point::new(99.0, 50.0), Point::new(50.0, 50.0)];
        let mut buf = GridIndexBuffer::new();
        buf.rebuild_incremental(region(), 10.0, &pts, &[0, 1], 2, &[])
            .unwrap();
        pts[0] = Point::new(107.0, 50.0); // wandered out east
        buf.update_moved(&pts, &[], &[]).unwrap();
        assert!(buf.any_within(Point::new(100.0, 50.0), 8.0));
        pts[0] = Point::new(95.0, 50.0); // back inside
        buf.update_moved(&pts, &[], &[]).unwrap();
        assert!(buf.any_within(Point::new(95.0, 50.0), 0.1));
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn buffer_visit_within_early_stop() {
        let pts = [Point::new(1.0, 1.0), Point::new(1.5, 1.0)];
        let mut buf = GridIndexBuffer::new();
        buf.rebuild(region(), 5.0, &pts).unwrap();
        let mut seen = 0;
        let completed = buf.visit_within(Point::new(1.0, 1.0), 2.0, |_| {
            seen += 1;
            false
        });
        assert!(!completed);
        assert_eq!(seen, 1);
    }
}
