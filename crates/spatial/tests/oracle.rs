//! Property tests: the grid index must agree with the brute-force oracle.

use fastflood_geom::{Point, Rect};
use fastflood_spatial::{BruteForceIndex, GridIndex, GridIndexBuffer};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

const SIDE: f64 = 200.0;

fn points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0..SIDE, 0.0..SIDE), 0..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn radius_queries_match_oracle(
        pts in points(120),
        qx in 0.0..SIDE,
        qy in 0.0..SIDE,
        r in 0.0..SIDE,
        bucket in 0.5..SIDE,
    ) {
        let region = Rect::square(SIDE).unwrap();
        let grid = GridIndex::build(region, bucket, &pts).unwrap();
        let oracle = BruteForceIndex::build(&pts);
        let q = Point::new(qx, qy);
        let mut got = grid.indices_within(q, r);
        got.sort();
        let mut expected = oracle.indices_within(q, r);
        expected.sort();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(grid.count_within(q, r), oracle.count_within(q, r));
    }

    #[test]
    fn pair_queries_match_oracle(pts in points(80), r in 0.1..30.0) {
        let region = Rect::square(SIDE).unwrap();
        let grid = GridIndex::for_radius(region, r, &pts).unwrap();
        let oracle = BruteForceIndex::build(&pts);
        let mut got = Vec::new();
        grid.for_each_pair_within(r, |i, j| got.push((i, j)));
        prop_assert!(got.iter().all(|&(i, j)| i < j), "pairs must be ordered");
        got.sort();
        got.dedup();
        let mut expected = oracle.pairs_within(r);
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn nearest_matches_oracle(
        pts in points(80),
        qx in -50.0..SIDE + 50.0,
        qy in -50.0..SIDE + 50.0,
        bucket in 0.5..SIDE,
    ) {
        let region = Rect::square(SIDE).unwrap();
        let grid = GridIndex::build(region, bucket, &pts).unwrap();
        let oracle = BruteForceIndex::build(&pts);
        let q = Point::new(qx, qy);
        match (grid.nearest(q), oracle.nearest(q)) {
            (None, None) => {}
            (Some((_, gd)), Some((_, bd))) => {
                // ties can differ in index; distances must agree
                prop_assert!((gd - bd).abs() < 1e-9, "{gd} vs {bd}");
            }
            (a, b) => prop_assert!(false, "mismatch: {a:?} vs {b:?}"),
        }
    }

    /// The flooding transmit question — "which uninformed agents are
    /// within `r` of an informed one?" — answered by the bucket join
    /// must match the [`BruteForceIndex`] answer exactly, for random
    /// dense and sparse populations, with crash patterns carving agents
    /// out of both sides.
    #[test]
    fn bucket_join_transmit_matches_brute_force(
        pts in points(300),
        r in 0.1..40.0,
        informed_mod in 2usize..6,
        crash_mod in 0usize..5,
    ) {
        let region = Rect::square(SIDE).unwrap();
        // split the population: crashed agents (when crash_mod > 0) are
        // excluded from both sides, the rest are informed or uninformed
        let mut informed: Vec<u32> = Vec::new();
        let mut uninformed: Vec<u32> = Vec::new();
        for i in 0..pts.len() {
            if crash_mod > 0 && i % (crash_mod + 2) == 1 {
                continue; // crashed: neither transmits nor receives
            }
            if i % informed_mod == 0 {
                informed.push(i as u32);
            } else {
                uninformed.push(i as u32);
            }
        }
        let mut un_grid = GridIndexBuffer::new();
        let mut tx_grid = GridIndexBuffer::new();
        un_grid
            .rebuild_subset_shared(region, r, &pts, &uninformed, pts.len())
            .unwrap();
        tx_grid
            .rebuild_subset_shared(region, r, &pts, &informed, pts.len())
            .unwrap();
        let mut got = Vec::new();
        un_grid.join_covered_by(&tx_grid, r, |id| got.push(id));
        got.sort_unstable();
        prop_assert!(got.windows(2).all(|w| w[0] < w[1]), "each id at most once");

        let tx_positions: Vec<Point> =
            informed.iter().map(|&t| pts[t as usize]).collect();
        let oracle = BruteForceIndex::build(&tx_positions);
        let expected: Vec<usize> = uninformed
            .iter()
            .map(|&u| u as usize)
            .filter(|&u| oracle.count_within(pts[u], r) > 0)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// An incrementally maintained buffer must hold the **identical
    /// entry set** to a fresh shared-geometry rebuild after arbitrarily
    /// long sequences of small moves, teleports, membership removals
    /// (informs/crashes) and insertions — and keep answering the
    /// transmit join exactly like the brute-force oracle throughout.
    #[test]
    fn incremental_update_equals_fresh_rebuild_under_churn(
        seed in 0u64..500,
        n in 20usize..160,
        rounds in 1usize..25,
        bucket in 2.0f64..25.0,
    ) {
        let region = Rect::square(SIDE).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..SIDE), rng.gen_range(0.0..SIDE)))
            .collect();
        let mut members: Vec<u32> = (0..n as u32).filter(|_| rng.gen::<f64>() < 0.7).collect();
        let mut inc = GridIndexBuffer::new();
        // announce the non-members as expected arrivals, exercising the
        // headroom machinery alongside plain slack
        let expected: Vec<u32> = (0..n as u32).filter(|id| !members.contains(id)).collect();
        inc.rebuild_incremental(region, bucket, &pts, &members, n, &expected)
            .unwrap();
        let mut fresh = GridIndexBuffer::new();
        for round in 0..rounds {
            // moves: mostly small drift (a fraction of a bucket), with
            // occasional teleports and excursions past the region border
            for p in &mut pts {
                *p = if rng.gen::<f64>() < 0.05 {
                    Point::new(rng.gen_range(-10.0..SIDE + 10.0), rng.gen_range(-10.0..SIDE + 10.0))
                } else {
                    Point::new(
                        p.x + rng.gen_range(-bucket / 3.0..bucket / 3.0),
                        p.y + rng.gen_range(-bucket / 3.0..bucket / 3.0),
                    )
                };
            }
            // membership churn: remove up to a quarter of the members,
            // insert a few non-members
            let mut removed = Vec::new();
            let mut keep = Vec::new();
            for &id in &members {
                if removed.len() * 4 < members.len() && rng.gen::<f64>() < 0.2 {
                    removed.push(id);
                } else {
                    keep.push(id);
                }
            }
            members = keep;
            let inserted: Vec<u32> = (0..n as u32)
                .filter(|id| !members.contains(id) && !removed.contains(id))
                .filter(|_| rng.gen::<f64>() < 0.1)
                .collect();
            members.extend(&inserted);
            let stats = inc.update_moved(&pts, &removed, &inserted).unwrap();
            prop_assert_eq!(inc.len(), members.len());
            prop_assert!(inc.is_incremental());

            fresh
                .rebuild_subset_shared(region, bucket, &pts, &members, n)
                .unwrap();
            prop_assert!(inc.shares_geometry_with(&fresh), "geometry survives updates");
            let snapshot = |buf: &GridIndexBuffer| {
                let mut v: Vec<(usize, usize, u64, u64)> = Vec::new();
                buf.for_each_entry(|b, id, p| v.push((b, id, p.x.to_bits(), p.y.to_bits())));
                v.sort_unstable();
                v
            };
            prop_assert_eq!(
                snapshot(&inc),
                snapshot(&fresh),
                "round {} (relocated {}, relayout {})",
                round,
                stats.relocated,
                stats.relayout
            );
            prop_assert_eq!(inc.occupied_buckets(), fresh.occupied_buckets());

            // the join through the incremental side answers the transmit
            // question exactly like brute force
            let others: Vec<u32> = (0..n as u32).filter(|id| !members.contains(id)).collect();
            let mut tx = GridIndexBuffer::new();
            tx.rebuild_subset_shared(region, bucket, &pts, &others, n).unwrap();
            let r = bucket.min(SIDE / 4.0);
            let mut got = Vec::new();
            inc.join_covered_by(&tx, r, |id| got.push(id));
            got.sort_unstable();
            let r2 = r * r;
            let expected: Vec<usize> = members
                .iter()
                .filter(|&&u| {
                    others.iter().any(|&t| pts[u as usize].euclid_sq(pts[t as usize]) <= r2)
                })
                .map(|&u| u as usize)
                .collect();
            let mut expected = expected;
            expected.sort_unstable();
            prop_assert_eq!(got, expected, "join after round {}", round);
        }
    }

    /// Deferred-move maintenance: membership churns via
    /// `update_membership` while every point drifts (binning left
    /// stale); the stale-tolerant join must stay **exact** against
    /// brute force on the true positions for as long as the drift
    /// stays within the announced slop — including directly after
    /// `update_moved` refreshes (slop back to 0).
    #[test]
    fn stale_join_with_deferred_moves_matches_brute_force(
        seed in 0u64..500,
        n in 30usize..150,
        rounds in 1usize..20,
        r in 1.0f64..12.0,
    ) {
        let region = Rect::square(SIDE).unwrap();
        let bucket = 4.0 * r;
        // staleness budget from the slice guarantee: r + 2·slop ≤ bucket
        let slop_budget = 0.5 * (bucket - r) / 2.0;
        let step = slop_budget / 4.0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..SIDE), rng.gen_range(0.0..SIDE)))
            .collect();
        let mut members: Vec<u32> = (0..n as u32).filter(|_| rng.gen::<f64>() < 0.6).collect();
        let mut inc = GridIndexBuffer::new();
        inc.rebuild_incremental(region, bucket, &pts, &members, n, &[]).unwrap();
        let mut stale = 0.0f64;
        for round in 0..rounds {
            // drift everyone by at most `step` (pythagorean bound)
            for p in &mut pts {
                let dx = rng.gen_range(-step / 1.5..step / 1.5);
                let dy = rng.gen_range(-step / 1.5..step / 1.5);
                *p = Point::new(p.x + dx, p.y + dy);
            }
            if stale + step > slop_budget {
                inc.update_moved(&pts, &[], &[]).unwrap();
                stale = 0.0;
            } else {
                stale += step;
                // membership churn without re-binning
                let removed: Vec<u32> =
                    members.iter().copied().filter(|_| rng.gen::<f64>() < 0.15).collect();
                members.retain(|id| !removed.contains(id));
                let inserted: Vec<u32> = (0..n as u32)
                    .filter(|id| !members.contains(id) && !removed.contains(id))
                    .filter(|_| rng.gen::<f64>() < 0.1)
                    .collect();
                members.extend(&inserted);
                inc.update_membership(&pts, &removed, &inserted).unwrap();
            }
            prop_assert_eq!(inc.len(), members.len());

            // the transmitter side: a fresh tight shared-geometry grid
            // (staleness 0 ≤ slop), as the engine's parsimonious path
            let others: Vec<u32> = (0..n as u32).filter(|id| !members.contains(id)).collect();
            let mut tx = GridIndexBuffer::new();
            tx.rebuild_subset_shared(region, bucket, &pts, &others, n).unwrap();
            let mut got = Vec::new();
            inc.join_covered_by_stale(&tx, r, stale, &pts, |id| got.push(id));
            got.sort_unstable();
            let r2 = r * r;
            let mut expected: Vec<usize> = members
                .iter()
                .filter(|&&u| {
                    others.iter().any(|&t| pts[u as usize].euclid_sq(pts[t as usize]) <= r2)
                })
                .map(|&u| u as usize)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected, "round {} stale {}", round, stale);
        }
    }

    /// The frontier-band iteration of the stale join engages only when
    /// the facing side occupies fewer buckets; whichever way the
    /// asymmetry goes — a tiny clustered transmitter side against a
    /// spread-out marked side (band path) or the reverse (plain path) —
    /// the reported set must match brute force on the true positions.
    #[test]
    fn stale_join_band_regimes_match_brute_force(
        seed in 0u64..500,
        n in 40usize..160,
        cluster in 2usize..20,
        r in 1.0f64..10.0,
        flip_bit in 0usize..2,
    ) {
        let flip = flip_bit == 1;
        let region = Rect::square(SIDE).unwrap();
        let bucket = 4.0 * r;
        let slop = 0.25 * (bucket - r);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..SIDE), rng.gen_range(0.0..SIDE)))
            .collect();
        // the clustered side huddles in one corner so it occupies very
        // few buckets; `flip` swaps which side is clustered
        for p in pts.iter_mut().take(cluster) {
            *p = Point::new(rng.gen_range(0.0..2.0 * r), rng.gen_range(0.0..2.0 * r));
        }
        let (members, others): (Vec<u32>, Vec<u32>) = if flip {
            ((cluster as u32..n as u32).collect(), (0..cluster as u32).collect())
        } else {
            ((0..cluster as u32).collect(), (cluster as u32..n as u32).collect())
        };
        let mut inc = GridIndexBuffer::new();
        inc.rebuild_incremental(region, bucket, &pts, &members, n, &[]).unwrap();
        // drift everyone within the announced slop, binning left stale
        for p in &mut pts {
            let dx = rng.gen_range(-slop / 1.5..slop / 1.5);
            let dy = rng.gen_range(-slop / 1.5..slop / 1.5);
            *p = Point::new(p.x + dx, p.y + dy);
        }
        let mut tx = GridIndexBuffer::new();
        tx.rebuild_subset_shared(region, bucket, &pts, &others, n).unwrap();
        let mut got = Vec::new();
        inc.join_covered_by_stale(&tx, r, slop, &pts, |id| got.push(id));
        got.sort_unstable();
        let r2 = r * r;
        let mut expected: Vec<usize> = members
            .iter()
            .filter(|&&u| {
                others.iter().any(|&t| pts[u as usize].euclid_sq(pts[t as usize]) <= r2)
            })
            .map(|&u| u as usize)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected, "cluster {} flip {}", cluster, flip);
    }

    #[test]
    fn any_within_consistent_with_count(
        pts in points(60),
        qx in 0.0..SIDE,
        qy in 0.0..SIDE,
        r in 0.0..60.0,
    ) {
        let region = Rect::square(SIDE).unwrap();
        let grid = GridIndex::build(region, 10.0, &pts).unwrap();
        let q = Point::new(qx, qy);
        let any = grid.any_within(q, r, |_| true);
        prop_assert_eq!(any, grid.count_within(q, r) > 0);
    }
}

#[test]
fn dense_random_cloud_matches_oracle_exactly() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let pts: Vec<Point> = (0..2000)
        .map(|_| Point::new(rng.gen_range(0.0..SIDE), rng.gen_range(0.0..SIDE)))
        .collect();
    let region = Rect::square(SIDE).unwrap();
    let r = 6.5;
    let grid = GridIndex::for_radius(region, r, &pts).unwrap();
    let oracle = BruteForceIndex::build(&pts);

    // pair sets agree
    let mut got = Vec::new();
    grid.for_each_pair_within(r, |i, j| got.push((i, j)));
    got.sort();
    let mut expected = oracle.pairs_within(r);
    expected.sort();
    assert_eq!(got.len(), expected.len());
    assert_eq!(got, expected);

    // spot-check point queries across the region
    for k in 0..50 {
        let q = Point::new((k * 41 % 200) as f64, (k * 73 % 200) as f64);
        let mut a = grid.indices_within(q, r);
        a.sort();
        let mut b = oracle.indices_within(q, r);
        b.sort();
        assert_eq!(a, b, "query at {q}");
    }
}
