//! Property tests: the grid index must agree with the brute-force oracle.

use fastflood_geom::{Point, Rect};
use fastflood_spatial::{BruteForceIndex, GridIndex, GridIndexBuffer};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

const SIDE: f64 = 200.0;

fn points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0..SIDE, 0.0..SIDE), 0..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn radius_queries_match_oracle(
        pts in points(120),
        qx in 0.0..SIDE,
        qy in 0.0..SIDE,
        r in 0.0..SIDE,
        bucket in 0.5..SIDE,
    ) {
        let region = Rect::square(SIDE).unwrap();
        let grid = GridIndex::build(region, bucket, &pts).unwrap();
        let oracle = BruteForceIndex::build(&pts);
        let q = Point::new(qx, qy);
        let mut got = grid.indices_within(q, r);
        got.sort();
        let mut expected = oracle.indices_within(q, r);
        expected.sort();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(grid.count_within(q, r), oracle.count_within(q, r));
    }

    #[test]
    fn pair_queries_match_oracle(pts in points(80), r in 0.1..30.0) {
        let region = Rect::square(SIDE).unwrap();
        let grid = GridIndex::for_radius(region, r, &pts).unwrap();
        let oracle = BruteForceIndex::build(&pts);
        let mut got = Vec::new();
        grid.for_each_pair_within(r, |i, j| got.push((i, j)));
        prop_assert!(got.iter().all(|&(i, j)| i < j), "pairs must be ordered");
        got.sort();
        got.dedup();
        let mut expected = oracle.pairs_within(r);
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn nearest_matches_oracle(
        pts in points(80),
        qx in -50.0..SIDE + 50.0,
        qy in -50.0..SIDE + 50.0,
        bucket in 0.5..SIDE,
    ) {
        let region = Rect::square(SIDE).unwrap();
        let grid = GridIndex::build(region, bucket, &pts).unwrap();
        let oracle = BruteForceIndex::build(&pts);
        let q = Point::new(qx, qy);
        match (grid.nearest(q), oracle.nearest(q)) {
            (None, None) => {}
            (Some((_, gd)), Some((_, bd))) => {
                // ties can differ in index; distances must agree
                prop_assert!((gd - bd).abs() < 1e-9, "{gd} vs {bd}");
            }
            (a, b) => prop_assert!(false, "mismatch: {a:?} vs {b:?}"),
        }
    }

    /// The flooding transmit question — "which uninformed agents are
    /// within `r` of an informed one?" — answered by the bucket join
    /// must match the [`BruteForceIndex`] answer exactly, for random
    /// dense and sparse populations, with crash patterns carving agents
    /// out of both sides.
    #[test]
    fn bucket_join_transmit_matches_brute_force(
        pts in points(300),
        r in 0.1..40.0,
        informed_mod in 2usize..6,
        crash_mod in 0usize..5,
    ) {
        let region = Rect::square(SIDE).unwrap();
        // split the population: crashed agents (when crash_mod > 0) are
        // excluded from both sides, the rest are informed or uninformed
        let mut informed: Vec<u32> = Vec::new();
        let mut uninformed: Vec<u32> = Vec::new();
        for i in 0..pts.len() {
            if crash_mod > 0 && i % (crash_mod + 2) == 1 {
                continue; // crashed: neither transmits nor receives
            }
            if i % informed_mod == 0 {
                informed.push(i as u32);
            } else {
                uninformed.push(i as u32);
            }
        }
        let mut un_grid = GridIndexBuffer::new();
        let mut tx_grid = GridIndexBuffer::new();
        un_grid
            .rebuild_subset_shared(region, r, &pts, &uninformed, pts.len())
            .unwrap();
        tx_grid
            .rebuild_subset_shared(region, r, &pts, &informed, pts.len())
            .unwrap();
        let mut got = Vec::new();
        un_grid.join_covered_by(&tx_grid, r, |id| got.push(id));
        got.sort_unstable();
        prop_assert!(got.windows(2).all(|w| w[0] < w[1]), "each id at most once");

        let tx_positions: Vec<Point> =
            informed.iter().map(|&t| pts[t as usize]).collect();
        let oracle = BruteForceIndex::build(&tx_positions);
        let expected: Vec<usize> = uninformed
            .iter()
            .map(|&u| u as usize)
            .filter(|&u| oracle.count_within(pts[u], r) > 0)
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn any_within_consistent_with_count(
        pts in points(60),
        qx in 0.0..SIDE,
        qy in 0.0..SIDE,
        r in 0.0..60.0,
    ) {
        let region = Rect::square(SIDE).unwrap();
        let grid = GridIndex::build(region, 10.0, &pts).unwrap();
        let q = Point::new(qx, qy);
        let any = grid.any_within(q, r, |_| true);
        prop_assert_eq!(any, grid.count_within(q, r) > 0);
    }
}

#[test]
fn dense_random_cloud_matches_oracle_exactly() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let pts: Vec<Point> = (0..2000)
        .map(|_| Point::new(rng.gen_range(0.0..SIDE), rng.gen_range(0.0..SIDE)))
        .collect();
    let region = Rect::square(SIDE).unwrap();
    let r = 6.5;
    let grid = GridIndex::for_radius(region, r, &pts).unwrap();
    let oracle = BruteForceIndex::build(&pts);

    // pair sets agree
    let mut got = Vec::new();
    grid.for_each_pair_within(r, |i, j| got.push((i, j)));
    got.sort();
    let mut expected = oracle.pairs_within(r);
    expected.sort();
    assert_eq!(got.len(), expected.len());
    assert_eq!(got, expected);

    // spot-check point queries across the region
    for k in 0..50 {
        let q = Point::new((k * 41 % 200) as f64, (k * 73 % 200) as f64);
        let mut a = grid.indices_within(q, r);
        a.sort();
        let mut b = oracle.indices_within(q, r);
        b.sort();
        assert_eq!(a, b, "query at {q}");
    }
}
